"""The O(log n)-awake spanning-tree comparator (Barenboim–Maimon point)."""

from __future__ import annotations

import pytest

from repro.baselines import run_sleeping_spanning_tree, with_synthetic_weights
from repro.graphs import (
    is_spanning_tree,
    mst_weight_set,
    random_connected_graph,
    ring_graph,
)


class TestSyntheticWeights:
    def test_preserves_topology(self):
        graph = ring_graph(8, seed=1)
        synthetic = with_synthetic_weights(
            graph.node_ids, [e.endpoints for e in graph.edges()], seed=2
        )
        assert synthetic.n == graph.n and synthetic.m == graph.m
        for edge in graph.edges():
            assert synthetic.has_edge(edge.u, edge.v)

    def test_weights_distinct(self):
        graph = random_connected_graph(12, 0.3, seed=3)
        synthetic = with_synthetic_weights(
            graph.node_ids, [e.endpoints for e in graph.edges()], seed=4
        )
        weights = [e.weight for e in synthetic.edges()]
        assert len(weights) == len(set(weights))

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            with_synthetic_weights([1, 2], [(1, 2), (2, 1)])


class TestSpanningTree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_output_is_spanning_tree(self, seed):
        graph = random_connected_graph(20, 0.2, seed=seed)
        result = run_sleeping_spanning_tree(graph, seed=seed)
        assert is_spanning_tree(graph, result.mst_weights)

    def test_tree_edges_are_real_edges(self):
        graph = ring_graph(10, seed=5)
        result = run_sleeping_spanning_tree(graph, seed=1)
        assert result.mst_weights <= graph.edge_weights()

    def test_not_necessarily_the_mst(self):
        """An *arbitrary* spanning tree: over several seeds at least one
        differs from the MST (on a ring: omits a non-heaviest edge)."""
        graph = ring_graph(16, seed=6)
        reference = mst_weight_set(graph)
        trees = {
            frozenset(run_sleeping_spanning_tree(graph, seed=s).mst_weights)
            for s in range(6)
        }
        assert any(tree != frozenset(reference) for tree in trees)

    def test_same_awake_complexity_class_as_mst(self):
        graph = ring_graph(64, seed=7)
        result = run_sleeping_spanning_tree(graph, seed=0)
        # O(log n): far below n.
        assert result.metrics.max_awake < graph.n * 4
        assert result.metrics.max_awake < 300

    def test_every_node_gets_ldt_labels(self):
        graph = random_connected_graph(12, 0.3, seed=8)
        result = run_sleeping_spanning_tree(graph, seed=0)
        roots = [
            out for out in result.node_outputs.values() if out.parent_port is None
        ]
        assert len(roots) == 1
        assert all(
            out.level >= 0 for out in result.node_outputs.values()
        )
