"""Unit tests for the timing core."""

from __future__ import annotations

import pytest

from repro.bench import BenchTiming, time_callable


class TestTimeCallable:
    def test_runs_warmup_plus_repeats(self):
        calls = []
        timing = time_callable(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(timing.samples_s) == 3
        assert timing.repeats == 3
        assert timing.warmup == 2

    def test_zero_warmup_allowed(self):
        timing = time_callable(lambda: None, repeats=1, warmup=0)
        assert len(timing.samples_s) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_samples_are_nonnegative(self):
        timing = time_callable(lambda: sum(range(1000)), repeats=4, warmup=0)
        assert all(sample >= 0 for sample in timing.samples_s)


class TestBenchTiming:
    def test_summary_statistics(self):
        timing = BenchTiming(samples_s=[0.4, 0.1, 0.2, 0.3], repeats=4, warmup=1)
        assert timing.median_s == pytest.approx(0.25)
        assert timing.min_s == 0.1
        assert timing.mean_s == pytest.approx(0.25)
        assert timing.iqr_s > 0

    def test_iqr_zero_for_few_samples(self):
        timing = BenchTiming(samples_s=[0.2, 0.1], repeats=2, warmup=0)
        assert timing.iqr_s == 0.0

    def test_summary_dict_round_trips(self):
        timing = BenchTiming(samples_s=[0.1, 0.2, 0.3], repeats=3, warmup=1)
        summary = timing.summary()
        assert summary["median_s"] == timing.median_s
        assert summary["samples_s"] == [0.1, 0.2, 0.3]
        assert summary["repeats"] == 3
