"""Schema validation, baseline comparison, and regression-gate tests."""

from __future__ import annotations

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchTiming,
    build_payload,
    compare_to_baseline,
    load_bench_json,
    make_baseline_comparison,
    validate_bench_payload,
    write_bench_json,
)
from repro.bench.suites import Benchmark


def _benchmark(name: str, tier: str = "micro") -> Benchmark:
    return Benchmark(
        name=name, tier=tier, smoke=True, params={"n": 8}, make=lambda: (lambda: None)
    )


def _payload(medians, env=None, suite="engine"):
    """Build a valid payload with the given ``{name: median}`` mapping."""
    results = [
        (
            _benchmark(name),
            BenchTiming(samples_s=[median, median, median], repeats=3, warmup=1),
        )
        for name, median in medians.items()
    ]
    return build_payload(suite, results, env or {"python": "3.11.0"})


class TestSchema:
    def test_build_payload_validates(self):
        payload = _payload({"a": 0.1, "b": 0.2})
        assert validate_bench_payload(payload) == 2
        assert payload["schema"] == SCHEMA_VERSION

    def test_round_trip_through_disk(self, tmp_path):
        payload = _payload({"a": 0.1})
        path = write_bench_json(tmp_path / "BENCH_test.json", payload)
        loaded = load_bench_json(path)
        assert loaded["benchmarks"][0]["name"] == "a"
        assert loaded["benchmarks"][0]["median_s"] == pytest.approx(0.1)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("schema"),
            lambda p: p.update(schema="repro-bench/999"),
            lambda p: p.pop("benchmarks"),
            lambda p: p.update(benchmarks="not-a-list"),
            lambda p: p["benchmarks"][0].pop("median_s"),
            lambda p: p["benchmarks"][0].update(samples_s=[]),
            lambda p: p["benchmarks"][0].update(samples_s=[-1.0]),
            lambda p: p["benchmarks"].append(dict(p["benchmarks"][0])),
        ],
    )
    def test_validation_rejects_malformed(self, mutate):
        payload = _payload({"a": 0.1})
        mutate(payload)
        with pytest.raises(ValueError):
            validate_bench_payload(payload)


class TestRegressionGate:
    def test_no_regression_within_threshold(self):
        comparison = compare_to_baseline(
            _payload({"a": 0.11}), _payload({"a": 0.10}), threshold=1.25
        )
        assert comparison.ok
        assert comparison.entries[0].ratio == pytest.approx(1.1)

    def test_synthetic_regression_detected(self):
        """A >threshold slowdown fails the gate — the acceptance criterion."""
        comparison = compare_to_baseline(
            _payload({"a": 0.30}), _payload({"a": 0.10}), threshold=1.25
        )
        assert not comparison.ok
        (regressed,) = comparison.regressions
        assert regressed.name == "a"
        assert regressed.ratio == pytest.approx(3.0)

    def test_speedups_never_fail(self):
        comparison = compare_to_baseline(
            _payload({"a": 0.01}), _payload({"a": 0.10}), threshold=1.25
        )
        assert comparison.ok

    def test_missing_benchmarks_reported_not_failed(self):
        comparison = compare_to_baseline(
            _payload({"a": 0.1, "new": 0.1}), _payload({"a": 0.1, "gone": 0.1})
        )
        assert comparison.ok
        assert comparison.missing_in_current == ["gone"]
        assert comparison.missing_in_baseline == ["new"]

    def test_env_mismatch_surfaces(self):
        comparison = compare_to_baseline(
            _payload({"a": 0.1}, env={"python": "3.11.0", "machine": "x86_64"}),
            _payload({"a": 0.1}, env={"python": "3.9.2", "machine": "x86_64"}),
        )
        assert "python" in comparison.env_mismatches
        assert "machine" not in comparison.env_mismatches

    def test_zero_baseline_handled(self):
        comparison = compare_to_baseline(
            _payload({"a": 0.1}), _payload({"a": 0.0}), threshold=1.25
        )
        assert comparison.entries[0].ratio == float("inf")
        assert not comparison.ok

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline(_payload({"a": 1.0}), _payload({"a": 1.0}), 0)

    def test_to_dict_is_json_shaped(self):
        report = compare_to_baseline(
            _payload({"a": 0.3}), _payload({"a": 0.1})
        ).to_dict()
        assert report["ok"] is False
        assert report["entries"][0]["regressed"] is True


class TestBaselineComparison:
    def test_speedup_recorded(self):
        block = make_baseline_comparison(
            _payload({"e2e": 0.5, "micro": 0.2}),
            _payload({"e2e": 1.5, "micro": 0.3}),
            label="pre-PR engine",
            headline="e2e",
        )
        assert block["reference"] == "pre-PR engine"
        assert block["benchmarks"]["e2e"]["speedup"] == pytest.approx(3.0)
        assert block["headline"]["name"] == "e2e"
        assert block["headline"]["speedup"] == pytest.approx(3.0)

    def test_headline_omitted_when_absent(self):
        block = make_baseline_comparison(
            _payload({"a": 0.5}), _payload({"a": 1.0}), label="x", headline="zzz"
        )
        assert "headline" not in block

    def test_payload_with_comparison_block_validates(self):
        reference = _payload({"a": 1.0})
        current = _payload({"a": 0.5})
        block = make_baseline_comparison(current, reference, label="ref")
        merged = dict(current, baseline_comparison=block)
        assert validate_bench_payload(merged) == 1
