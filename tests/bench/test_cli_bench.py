"""End-to-end tests for the ``repro bench`` subcommand, including the
acceptance-critical regression gate: ``bench --check`` must exit nonzero
when a benchmark is slower than the baseline by more than the threshold.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import BenchTiming, build_payload, load_bench_json, write_bench_json
from repro.bench.suites import Benchmark
from repro.cli import main


def _fake_results(medians):
    return [
        (
            Benchmark(
                name=name,
                tier="micro",
                smoke=True,
                params={},
                make=lambda: (lambda: None),
            ),
            BenchTiming(samples_s=[median] * 3, repeats=3, warmup=0),
        )
        for name, median in medians.items()
    ]


def _write(path, medians, env=None):
    payload = build_payload("engine", _fake_results(medians), env or {})
    return write_bench_json(path, payload)


class TestBenchRun:
    def test_single_micro_benchmark_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_out.json"
        code = main(
            [
                "bench",
                "--names",
                "payload_bits_micro",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--output",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        payload = load_bench_json(out)
        (bench,) = payload["benchmarks"]
        assert bench["name"] == "payload_bits_micro"
        assert bench["median_s"] > 0

    def test_unknown_name_exits_2(self, capsys):
        assert main(["bench", "--names", "no_such_benchmark", "--quiet"]) == 2

    def test_json_mode_emits_payload(self, tmp_path, capsys):
        current = _write(tmp_path / "current.json", {"payload_bits_micro": 0.01})
        code = main(["bench", "--input", str(current), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-bench/1"
        assert payload["benchmarks"][0]["name"] == "payload_bits_micro"


class TestBenchCheckGate:
    def test_regression_exits_nonzero(self, tmp_path, capsys):
        """Synthetic >threshold regression: current is 10x the baseline."""
        baseline = _write(tmp_path / "baseline.json", {"payload_bits_micro": 0.001})
        current = _write(tmp_path / "current.json", {"payload_bits_micro": 0.010})
        code = main(
            ["bench", "--input", str(current), "--check", str(baseline), "--quiet"]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_regression_from_live_run_exits_nonzero(self, tmp_path, capsys):
        """Same gate, but with the benchmark actually executed by the CLI.

        The baseline median is absurdly small (1 ns), so any real run of
        the micro benchmark regresses past the threshold.
        """
        baseline = _write(tmp_path / "baseline.json", {"payload_bits_micro": 1e-9})
        code = main(
            [
                "bench",
                "--names",
                "payload_bits_micro",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--check",
                str(baseline),
                "--quiet",
            ]
        )
        assert code == 1

    def test_warn_only_downgrades_to_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", {"payload_bits_micro": 0.001})
        current = _write(tmp_path / "current.json", {"payload_bits_micro": 0.010})
        code = main(
            [
                "bench",
                "--input",
                str(current),
                "--check",
                str(baseline),
                "--warn-only",
                "--quiet",
            ]
        )
        assert code == 0
        assert "WARNING" in capsys.readouterr().err

    def test_within_threshold_passes(self, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", {"payload_bits_micro": 0.010})
        current = _write(tmp_path / "current.json", {"payload_bits_micro": 0.011})
        code = main(
            ["bench", "--input", str(current), "--check", str(baseline), "--quiet"]
        )
        assert code == 0

    def test_json_mode_includes_check_report(self, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", {"payload_bits_micro": 0.001})
        current = _write(tmp_path / "current.json", {"payload_bits_micro": 0.010})
        code = main(
            [
                "bench",
                "--input",
                str(current),
                "--check",
                str(baseline),
                "--warn-only",
                "--json",
            ]
        )
        assert code == 0
        output = json.loads(capsys.readouterr().out)
        assert output["check"]["ok"] is False
        assert output["check"]["entries"][0]["regressed"] is True


class TestBenchCompareRef:
    def test_baseline_comparison_embedded(self, tmp_path, capsys):
        reference = _write(tmp_path / "reference.json", {"payload_bits_micro": 10.0})
        out = tmp_path / "BENCH_out.json"
        code = main(
            [
                "bench",
                "--names",
                "payload_bits_micro",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--compare-ref",
                str(reference),
                "--compare-label",
                "synthetic reference",
                "--output",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        block = load_bench_json(out)["baseline_comparison"]
        assert block["reference"] == "synthetic reference"
        assert block["benchmarks"]["payload_bits_micro"]["speedup"] > 1
