"""The fault benchmark tier: registration, selection, and runnability."""

from __future__ import annotations

import pytest

from repro.bench.suites import BENCHMARKS, get_benchmark, select_benchmarks

FAULT_NAMES = {"engine_fault_drop_loop", "mst_randomized_fault_dup_n64"}


class TestFaultTier:
    def test_fault_suite_selects_exactly_the_fault_tier(self):
        selected = select_benchmarks("fault")
        assert {b.name for b in selected} == FAULT_NAMES
        assert all(b.tier == "fault" for b in selected)

    def test_fault_benchmarks_are_in_the_smoke_suite(self):
        smoke = {b.name for b in select_benchmarks("smoke")}
        assert FAULT_NAMES <= smoke

    def test_full_suite_includes_fault_tier(self):
        assert FAULT_NAMES <= {b.name for b in select_benchmarks("full")}

    def test_fault_params_recorded(self):
        drop = get_benchmark("engine_fault_drop_loop")
        assert drop.params["drop"] == pytest.approx(0.05)
        dup = get_benchmark("mst_randomized_fault_dup_n64")
        assert dup.params["dup"] == pytest.approx(0.1)

    def test_fault_thunks_execute(self):
        # make() builds inputs once; the returned thunk must run cleanly
        # (dup faults are survivable, drop faults hit a loss-tolerant
        # protocol) so the timed body never raises mid-benchmark.
        for name in sorted(FAULT_NAMES):
            thunk = get_benchmark(name).make()
            thunk()

    def test_benchmark_tiers_are_known(self):
        assert {b.tier for b in BENCHMARKS} == {
            "micro", "e2e", "fault", "monitors", "mis", "scale"
        }
