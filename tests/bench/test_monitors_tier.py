"""The monitors benchmark tier: monitoring overhead is a tracked workload."""

from __future__ import annotations

from repro.bench.suites import get_benchmark, select_benchmarks

MONITOR_NAMES = {
    "mst_randomized_monitored_n64",
    "mst_deterministic_monitored_n64",
}


class TestMonitorsTier:
    def test_monitors_suite_selects_exactly_the_tier(self):
        selected = select_benchmarks("monitors")
        assert {b.name for b in selected} == MONITOR_NAMES
        assert all(b.tier == "monitors" for b in selected)

    def test_monitored_benchmarks_are_in_the_smoke_suite(self):
        smoke = {b.name for b in select_benchmarks("smoke")}
        assert MONITOR_NAMES <= smoke

    def test_full_suite_includes_monitors_tier(self):
        assert MONITOR_NAMES <= {b.name for b in select_benchmarks("full")}

    def test_monitor_params_recorded(self):
        for name in sorted(MONITOR_NAMES):
            benchmark = get_benchmark(name)
            assert benchmark.params["monitors"] == "all"
            assert benchmark.params["n"] == 64

    def test_monitored_thunks_execute(self):
        for name in sorted(MONITOR_NAMES):
            thunk = get_benchmark(name).make()
            thunk()
