"""The ``scale`` bench tier and its committed acceptance gate.

The committed ``BENCH_engine.json`` must carry the array-vs-coroutine
pair at n = 4096 with a >= 20x median speedup (the PR's acceptance
criterion), plus the n = 16384 array run proving CI-smoke reach.  The
tier itself must stay out of the per-push smoke subset.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import select_benchmarks
from repro.bench.env import environment_fingerprint
from repro.bench.suites import BENCHMARKS, get_benchmark

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BENCH_engine.json"

SCALE_NAMES = (
    "mst_randomized_array_scale_n4096",
    "mst_randomized_array_scale_n16384",
    "mst_randomized_coroutine_scale_n4096",
)


class TestScaleSuite:
    def test_scale_suite_selection(self):
        assert [b.name for b in select_benchmarks("scale")] == list(SCALE_NAMES)

    def test_scale_tier_not_in_smoke(self):
        smoke = {b.name for b in select_benchmarks("smoke")}
        assert smoke.isdisjoint(SCALE_NAMES)
        assert all(not get_benchmark(name).smoke for name in SCALE_NAMES)

    def test_full_suite_includes_scale(self):
        full = {b.name for b in select_benchmarks("full")}
        assert set(SCALE_NAMES) <= full
        assert len(full) == len(BENCHMARKS)

    def test_scale_params_pin_engine_and_graph(self):
        for name in SCALE_NAMES:
            params = dict(get_benchmark(name).params)
            assert params["family"] == "grid"
            assert params["seed"] == 0
            assert params["engine"] in ("coroutine", "array")

    def test_scale_thunk_runs_at_tiny_n(self):
        # The factory itself, shrunk to a cheap n: exercises the exact
        # code path the tier times without paying the 4096-node cost.
        pytest.importorskip("numpy")
        from repro.bench.suites import _make_mst_scale

        _make_mst_scale(16, "array")()
        _make_mst_scale(16, "coroutine")()


class TestCommittedBaseline:
    @pytest.fixture(scope="class")
    def payload(self):
        assert BASELINE.exists(), "BENCH_engine.json must be committed"
        return json.loads(BASELINE.read_text())

    def test_baseline_carries_scale_tier(self, payload):
        names = {entry["name"] for entry in payload["benchmarks"]}
        assert set(SCALE_NAMES) <= names

    def test_speedup_gate_20x_at_n4096(self, payload):
        medians = {
            entry["name"]: entry["median_s"] for entry in payload["benchmarks"]
        }
        coroutine = medians["mst_randomized_coroutine_scale_n4096"]
        array = medians["mst_randomized_array_scale_n4096"]
        assert array > 0
        speedup = coroutine / array
        assert speedup >= 20, (
            f"array backend speedup {speedup:.1f}x at n=4096 fell below the "
            "20x acceptance gate; re-run `repro-mst bench --suite scale` on "
            "quiet hardware before re-committing BENCH_engine.json"
        )

    def test_n16384_within_ci_smoke_time(self, payload):
        medians = {
            entry["name"]: entry["median_s"] for entry in payload["benchmarks"]
        }
        # "Completes in CI smoke time": a single sample at n=16384 stays
        # well under a minute even with generous shared-runner slack.
        assert medians["mst_randomized_array_scale_n16384"] < 30

    def test_env_fingerprint_records_numpy(self, payload):
        for key in ("numpy", "numpy_blas", "numpy_threads"):
            assert key in payload["env"], key


class TestEnvironmentFingerprint:
    def test_numpy_keys_present(self):
        env = environment_fingerprint()
        assert set(("numpy", "numpy_blas", "numpy_threads")) <= set(env)

    def test_numpy_version_matches_import(self):
        numpy = pytest.importorskip("numpy")
        assert environment_fingerprint()["numpy"] == numpy.__version__
