"""End-to-end CLI coverage for ``campaign run``/``resume``/``report``."""

from __future__ import annotations

import json

import pytest

from repro.campaigns import CAMPAIGN_SCHEMA, load_report
from repro.cli import main

SPEC_TOML = """\
[campaign]
name = "cli-test"
description = "CLI round trip"

[[grids]]
name = "g"
algorithms = ["randomized"]
families = ["ring"]
sizes = [8]
seeds = 2

[[fits]]
name = "awake"
grid = "g"
metric = "max_awake"
model = "log"
resamples = 20
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "campaign.toml"
    path.write_text(SPEC_TOML)
    return path


def campaign(action, spec_path, tmp_path, *extra):
    return main(
        [
            "campaign", action, str(spec_path),
            "--root", str(tmp_path / "campaigns"),
            "--cache-dir", str(tmp_path / "cache"),
            "--quiet",
            *extra,
        ]
    )


class TestCampaignCLI:
    def test_run_writes_ledger_and_report(self, spec_path, tmp_path, capsys):
        assert campaign("run", spec_path, tmp_path) == 0
        out = capsys.readouterr().out
        assert "campaign 'cli-test'" in out
        root = tmp_path / "campaigns" / "cli-test"
        assert (root / "runs.jsonl").exists()
        report = load_report(root / "report.json")
        assert report["schema"] == CAMPAIGN_SCHEMA
        assert report["summary"] == {
            "cells": 2, "ok": 2, "failed": 0, "violations": 0
        }

    def test_json_output_is_the_report_payload(
        self, spec_path, tmp_path, capsys
    ):
        assert campaign("run", spec_path, tmp_path, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == CAMPAIGN_SCHEMA
        assert "awake" in payload["fits"]

    def test_report_replays_without_running(
        self, spec_path, tmp_path, capsys
    ):
        assert campaign("run", spec_path, tmp_path) == 0
        first = (
            tmp_path / "campaigns" / "cli-test" / "report.json"
        ).read_bytes()
        capsys.readouterr()
        assert campaign("report", spec_path, tmp_path) == 0
        second = (
            tmp_path / "campaigns" / "cli-test" / "report.json"
        ).read_bytes()
        assert first == second

    def test_report_before_run_suggests_resume(
        self, spec_path, tmp_path, capsys
    ):
        assert campaign("report", spec_path, tmp_path) == 1
        err = capsys.readouterr().err
        assert "campaign resume" in err

    def test_resume_is_a_run_alias(self, spec_path, tmp_path, capsys):
        assert campaign("resume", spec_path, tmp_path) == 0
        capsys.readouterr()
        assert campaign("resume", spec_path, tmp_path) == 0

    def test_bad_spec_exits_two_with_path_in_message(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.toml"
        bad.write_text('[campaign]\nname = "x"\n')
        assert campaign("run", bad, tmp_path) == 2
        err = capsys.readouterr().err
        assert "no [[grids]]" in err and str(bad) in err

    def test_output_flag_redirects_report(self, spec_path, tmp_path, capsys):
        target = tmp_path / "custom.json"
        assert campaign(
            "run", spec_path, tmp_path, "--output", str(target)
        ) == 0
        assert load_report(target)["campaign"] == "cli-test"
