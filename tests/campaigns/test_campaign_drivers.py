"""Driver logic: the pure bisection core and both sim-backed drivers.

The drivers talk to simulations only through the ``(payload, label) ->
records`` callable, so everything here runs against synthetic records —
no simulator in the loop.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.campaigns import (
    BisectDriver,
    BisectSearch,
    CampaignSpecError,
    DriverBudgetError,
    ThresholdDriver,
    build_driver,
    default_budget,
)


def run_search(lo: int, hi: int, threshold) -> BisectSearch:
    """Drive a search against the monotone predicate ``n >= threshold``.

    ``threshold=None`` means the predicate is false everywhere.
    """
    search = BisectSearch(lo, hi)
    while (value := search.propose()) is not None:
        search.feed(value, threshold is not None and value >= threshold)
    return search


class TestBisectSearch:
    def test_finds_interior_threshold(self):
        search = run_search(4, 512, 37)
        assert search.found == 37

    def test_predicate_never_true_returns_none(self):
        assert run_search(4, 512, None).found is None

    def test_predicate_always_true_returns_lo(self):
        assert run_search(4, 512, 0).found == 4

    def test_single_point_range(self):
        assert run_search(7, 7, 7).found == 7
        assert run_search(7, 7, None).found is None

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BisectSearch(10, 4)

    def test_budget_enforced(self):
        search = BisectSearch(0, 1023, budget=3)
        with pytest.raises(DriverBudgetError, match="budget of 3"):
            while (value := search.propose()) is not None:
                search.feed(value, False)

    def test_known_crossover_trace(self):
        # The committed CAMPAIGN_crossover.json fact: bisecting [4, 512]
        # with the threshold at 5 takes exactly ceil(log2(509)) probes.
        search = run_search(4, 512, 5)
        assert search.found == 5
        assert [value for value, _ in search.probes] == [
            258, 131, 67, 35, 19, 11, 7, 5, 4
        ]
        assert len(search.probes) == math.ceil(math.log2(512 - 4 + 1))

    @given(
        bounds=st.tuples(
            st.integers(min_value=-1000, max_value=1000),
            st.integers(min_value=0, max_value=2000),
        ),
        offset=st.integers(min_value=-1, max_value=2001),
    )
    def test_monotone_predicates_converge_within_log_budget(
        self, bounds, offset
    ):
        """Property: on any monotone predicate over any range, the search
        probes at most ceil(log2(range)) + 1 values, stays inside the
        range, and returns the exact threshold (or None)."""
        lo, span = bounds
        hi = lo + span
        threshold = lo + offset  # may sit below, inside, or above range
        search = BisectSearch(lo, hi)
        while (value := search.propose()) is not None:
            assert lo <= value <= hi
            search.feed(value, value >= threshold)
        assert len(search.probes) <= math.ceil(math.log2(hi - lo + 1)) + 1
        assert len(search.probes) <= default_budget(lo, hi)
        if threshold <= lo:
            assert search.found == lo
        elif threshold > hi:
            assert search.found is None
        else:
            assert search.found == threshold


def fake_runner(means, calls=None):
    """Grid runner returning constant-metric records per algorithm.

    ``means`` maps algorithm -> callable(n) -> value (or a constant).
    """

    def run(payload, label):
        if calls is not None:
            calls.append(payload)
        algorithm = payload["algorithms"][0]
        n = payload["sizes"][0]
        value = means[algorithm]
        value = value(n) if callable(value) else value
        return [
            {"algorithm": algorithm, "n": n, "seed": seed,
             "max_awake": value, "rounds": value, "correct": True}
            for seed in payload["seeds"]
        ]

    return run


class TestBisectDriver:
    CONFIG = {
        "kind": "bisect",
        "name": "cross",
        "family": "gnp",
        "seeds": [0, 1],
        "lo": 4,
        "hi": 64,
        "left": {"algorithm": "sleepy", "metric": "max_awake"},
        "right": {"algorithm": "awake", "metric": "rounds"},
    }

    def test_finds_crossover_and_audits_probes(self):
        driver = build_driver(self.CONFIG)
        calls = []
        # sleepy costs 10*log2(n), awake costs n: on [4, 64] the
        # predicate 10*log2(n) < n first holds at n = 59.
        runner = fake_runner(
            {"sleepy": lambda n: 10 * math.log2(n), "awake": lambda n: n},
            calls,
        )
        result = driver.run(runner)
        assert result["crossover"] == 59
        assert result["kind"] == "bisect"
        assert result["probe_count"] == len(result["probes"])
        assert result["probe_count"] <= default_budget(4, 64)
        # Every probe ran both sides over the configured seeds.
        assert all(call["seeds"] == [0, 1] for call in calls)
        assert len(calls) == 2 * result["probe_count"]
        first = result["probes"][0]
        assert set(first) == {"n", "left", "right", "verdict"}

    def test_no_crossover_reports_none(self):
        driver = build_driver(self.CONFIG)
        runner = fake_runner({"sleepy": 100.0, "awake": 1.0})
        assert driver.run(runner)["crossover"] is None

    def test_missing_metric_raises(self):
        driver = build_driver(self.CONFIG)

        def runner(payload, label):
            return [{"algorithm": payload["algorithms"][0], "n": 8,
                     "seed": 0, "max_awake": None, "rounds": None}]

        with pytest.raises(RuntimeError, match="no 'max_awake' measurements"):
            driver.run(runner)

    def test_side_payload_carries_engine_and_problem(self):
        config = dict(self.CONFIG)
        config["left"] = {
            "algorithm": "mis", "metric": "max_awake", "problem": "mis"
        }
        config["right"] = {
            "algorithm": "randomized", "metric": "rounds", "engine": "array"
        }
        driver = build_driver(config)
        left = driver.left.payload("gnp", 8, [0])
        right = driver.right.payload("gnp", 8, [0])
        assert left["problem"] == "mis" and "engine" not in left
        assert right["engine"] == "array" and "problem" not in right

    @pytest.mark.parametrize(
        "broken, match",
        [
            ({"lo": 10, "hi": 4}, "empty range"),
            ({"op": "~"}, "unknown op"),
            ({"seeds": []}, "at least one seed"),
            ({"left": {"metric": "rounds"}}, "at least 'algorithm'"),
            ({"extra": 1}, "unknown keys"),
        ],
    )
    def test_config_validation(self, broken, match):
        config = {**self.CONFIG, **broken}
        with pytest.raises(CampaignSpecError, match=match):
            build_driver(config, source="spec.toml")


class TestThresholdDriver:
    CONFIG = {
        "kind": "threshold",
        "name": "tolerance",
        "algorithm": "randomized",
        "family": "ring",
        "n": 8,
        "seeds": [0, 1],
        "fault": "drop",
        "rates": [0.0, 0.01, 0.05],
        "monitors": "all",
    }

    @staticmethod
    def runner(breaking_rate, via="correct"):
        def run(payload, label):
            rate = float(payload["faults"][0].split(":")[1])
            broken = rate >= breaking_rate
            return [
                {
                    "correct": not (broken and via == "correct"),
                    "violations": 2 if broken and via == "monitor" else 0,
                    "outcome": "detected_wrong" if broken else "correct",
                }
                for _ in payload["seeds"]
            ]

        return run

    def test_stops_at_first_breaking_rate(self):
        driver = build_driver(self.CONFIG)
        result = driver.run(self.runner(0.01))
        assert result["threshold"] == 0.01
        # The scan never probes rates past the break.
        assert [probe["rate"] for probe in result["probes"]] == [0.0, 0.01]

    def test_monitor_violations_also_break(self):
        driver = build_driver(self.CONFIG)
        result = driver.run(self.runner(0.05, via="monitor"))
        assert result["threshold"] == 0.05
        assert result["probes"][-1]["violations"] > 0

    def test_surviving_all_rates_reports_none(self):
        driver = build_driver(self.CONFIG)
        result = driver.run(self.runner(1.0))
        assert result["threshold"] is None
        assert len(result["probes"]) == 3

    def test_payload_carries_fault_spec_and_monitors(self):
        driver = build_driver(self.CONFIG)
        payload = driver._payload(0.01)
        assert payload["faults"] == ["drop:0.01"]
        assert payload["monitors"] == "all"

    @pytest.mark.parametrize(
        "broken, match",
        [
            ({"rates": []}, "non-empty 'rates'"),
            ({"rates": [0.1, 0.05]}, "ascending"),
            ({"n": None}, None),
            ({"extra": 1}, "unknown keys"),
        ],
    )
    def test_config_validation(self, broken, match):
        config = {**self.CONFIG, **broken}
        if match is None:
            with pytest.raises((CampaignSpecError, TypeError)):
                build_driver(config)
        else:
            with pytest.raises(CampaignSpecError, match=match):
                build_driver(config)
