"""Campaign execution: resume-after-kill, replay, and report identity."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignSpec,
    LocalGridExecutor,
    MissingRecordsError,
    StoreReplayExecutor,
    ledger_path,
    run_campaign,
    validate_campaign_report,
    write_report,
)
from repro.orchestrator import RunStore

PAYLOAD = {
    "campaign": {"name": "resume-test", "description": "kill/resume harness"},
    "grids": [
        {
            "name": "g",
            "algorithms": ["randomized"],
            "families": ["ring"],
            "sizes": [8, 10, 12],
            "seeds": 2,
            "monitors": "all",
        }
    ],
    "drivers": [
        {
            "kind": "bisect",
            "name": "cross",
            "family": "ring",
            "seeds": [0],
            "lo": 4,
            "hi": 16,
            "left": {"algorithm": "randomized", "metric": "max_awake"},
            "right": {"algorithm": "pipelined", "metric": "rounds"},
        }
    ],
    "fits": [
        {
            "name": "awake",
            "grid": "g",
            "metric": "max_awake",
            "model": "log",
            "resamples": 50,
        }
    ],
}


@pytest.fixture
def spec():
    return CampaignSpec.from_payload(PAYLOAD, source="<test>")


def fresh_run(spec, root):
    ledger = ledger_path(root, spec.name)
    executor = LocalGridExecutor(store=ledger)
    return run_campaign(spec, executor), ledger


class TestRunAndReplay:
    def test_full_run_produces_valid_report(self, spec, tmp_path):
        report, _ = fresh_run(spec, tmp_path)
        validate_campaign_report(report)
        assert report["summary"]["cells"] == 6
        assert report["summary"]["failed"] == 0
        assert report["grids"]["g"]["violations"] == 0
        assert report["drivers"][0]["crossover"] is not None
        assert "awake" in report["fits"]

    def test_replay_from_ledger_is_byte_identical(self, spec, tmp_path):
        report, ledger = fresh_run(spec, tmp_path)
        replay = run_campaign(spec, StoreReplayExecutor(ledger))
        assert json.dumps(replay, sort_keys=True) == json.dumps(
            report, sort_keys=True
        )

    def test_replay_with_missing_cells_names_them(self, spec, tmp_path):
        report, ledger = fresh_run(spec, tmp_path)
        # Rebuild the ledger with the last two records dropped.
        records = RunStore(ledger).load()
        truncated = tmp_path / "truncated.jsonl"
        RunStore(truncated).extend(records[:-2])
        with pytest.raises(MissingRecordsError) as excinfo:
            run_campaign(spec, StoreReplayExecutor(truncated))
        assert excinfo.value.missing
        assert "campaign resume" in str(excinfo.value)


class TestKillAndResume:
    def kill_mid_grid(self, spec, root, keep, tear=False):
        """Simulate a campaign killed mid-grid: run it fully into a
        scratch ledger, then build the 'interrupted' ledger holding only
        the first ``keep`` records — optionally plus a torn trailing
        line, as left by a writer killed mid-append."""
        full_report, full_ledger = fresh_run(spec, root / "scratch")
        records = RunStore(full_ledger).load()
        assert len(records) > keep
        interrupted = ledger_path(root / "real", spec.name)
        RunStore(interrupted).extend(records[:keep])
        if tear:
            with open(interrupted, "a", encoding="utf-8") as handle:
                handle.write('{"key": "torn-mid-wri')
        return full_report, interrupted

    def test_resume_runs_exactly_the_missing_cells(self, spec, tmp_path):
        full_report, interrupted = self.kill_mid_grid(spec, tmp_path, keep=3)
        labels = []
        executor = LocalGridExecutor(store=interrupted, log=labels.append)
        resumed = run_campaign(spec, executor)
        # The dense grid re-ran only the 3 missing cells...
        grid_line = next(line for line in labels if line.startswith("grid g"))
        assert "3 executed" in grid_line and "3 resumed" in grid_line
        # ...and the report is byte-identical to the uninterrupted run.
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            full_report, sort_keys=True
        )

    def test_resume_tolerates_torn_trailing_line(self, spec, tmp_path):
        full_report, interrupted = self.kill_mid_grid(
            spec, tmp_path, keep=4, tear=True
        )
        store = RunStore(interrupted)
        store.load()
        assert store.skipped_lines == 1  # the torn line is skipped, not fatal
        resumed = run_campaign(spec, LocalGridExecutor(store=interrupted))
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            full_report, sort_keys=True
        )

    def test_driver_probes_resume_from_ledger_too(self, spec, tmp_path):
        _, ledger = fresh_run(spec, tmp_path)
        labels = []
        executor = LocalGridExecutor(store=ledger, log=labels.append)
        run_campaign(spec, executor)
        # Second run over a complete ledger executes nothing anywhere —
        # dense grid and every driver probe alike.
        assert labels and all("0 executed" in line for line in labels)


class TestReportArtifact:
    def test_write_report_is_byte_stable(self, spec, tmp_path):
        report, _ = fresh_run(spec, tmp_path / "a")
        first = tmp_path / "r1.json"
        second = tmp_path / "r2.json"
        write_report(report, first)
        write_report(json.loads(first.read_text()), second)
        assert first.read_bytes() == second.read_bytes()

    def test_validate_rejects_tampered_summary(self, spec, tmp_path):
        report, _ = fresh_run(spec, tmp_path)
        tampered = json.loads(json.dumps(report))
        tampered["summary"]["cells"] += 1
        with pytest.raises(ValueError, match="summary.cells"):
            validate_campaign_report(tampered)

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_campaign_report({"schema": "repro-campaign/0"})
