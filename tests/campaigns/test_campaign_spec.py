"""Campaign spec loading, validation, and golden-pinned compilation."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, CampaignSpecError
from repro.orchestrator import expand_grid, grid_key

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SMOKE_SPEC = REPO_ROOT / "examples" / "campaigns" / "smoke.toml"
CROSSOVER_SPEC = REPO_ROOT / "examples" / "campaigns" / "crossover.toml"

#: Pinned content hash of the committed smoke grid.  Moves only if the
#: JobSpec hashing scheme or the committed spec changes — both of which
#: invalidate every cached result, so this should move deliberately.
SMOKE_GRID_KEY = (
    "6ef2a35723a2fd590b99c400e57ae2f10992edb3b6a8579a5014523f70a5d02e"
)


def minimal_payload(**overrides):
    payload = {
        "campaign": {"name": "t"},
        "grids": [
            {
                "name": "g",
                "algorithms": ["randomized"],
                "families": ["ring"],
                "sizes": [8],
                "seeds": 1,
            }
        ],
    }
    payload.update(overrides)
    return payload


class TestCommittedSpecs:
    def test_smoke_spec_compiles_to_golden_grid(self):
        spec = CampaignSpec.load(SMOKE_SPEC)
        grids = spec.compile()
        assert grid_key(grids["awake"]) == SMOKE_GRID_KEY

    def test_smoke_grid_matches_hand_rolled_expand_grid(self):
        spec = CampaignSpec.load(SMOKE_SPEC)
        hand = expand_grid(
            ["randomized"], ["ring"], [8, 16], [0, 1], monitors="all"
        )
        assert [job.key for job in spec.compile()["awake"]] == [
            job.key for job in hand
        ]

    def test_crossover_spec_validates(self):
        spec = CampaignSpec.load(CROSSOVER_SPEC)
        assert {grid.name for grid in spec.grids} == {
            "mst-curve", "mis-curve"
        }
        assert {config["kind"] for config in spec.drivers} == {
            "bisect", "threshold"
        }
        assert len(spec.fits) == 2

    def test_derived_sizes_expand_to_doublings(self):
        spec = CampaignSpec.load(CROSSOVER_SPEC)
        mst = next(grid for grid in spec.grids if grid.name == "mst-curve")
        assert mst.payload["sizes"] == [16, 32, 64, 128, 256]


class TestValidation:
    def test_json_and_toml_content_hash_identically(self, tmp_path):
        toml_spec = CampaignSpec.load(SMOKE_SPEC)
        json_path = tmp_path / "smoke.json"
        json_path.write_text(json.dumps(toml_spec.payload()))
        assert CampaignSpec.load(json_path).spec_hash == toml_spec.spec_hash

    def test_error_names_the_spec_file(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            '[campaign]\nname = "bad"\n'
            '[[grids]]\nname = "g"\nalgorithms = []\n'
            'families = ["ring"]\nsizes = [8]\n'
        )
        with pytest.raises(CampaignSpecError) as excinfo:
            CampaignSpec.load(path)
        message = str(excinfo.value)
        assert "empty grid axis 'algorithms'" in message
        assert str(path) in message

    def test_empty_seed_list_rejected_with_path(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            '[campaign]\nname = "bad"\n'
            '[[grids]]\nname = "g"\nalgorithms = ["randomized"]\n'
            'families = ["ring"]\nsizes = [8]\nseeds = []\n'
        )
        with pytest.raises(
            CampaignSpecError, match="empty grid axis 'seeds'"
        ) as excinfo:
            CampaignSpec.load(path)
        assert str(path) in str(excinfo.value)

    def test_unparseable_file_names_the_spec_file(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[campaign\n")
        with pytest.raises(CampaignSpecError, match=str(path)):
            CampaignSpec.load(path)

    def test_missing_name_rejected(self):
        with pytest.raises(CampaignSpecError, match="non-empty string 'name'"):
            CampaignSpec.from_payload(minimal_payload(campaign={}))

    def test_no_grids_rejected(self):
        with pytest.raises(CampaignSpecError, match="no \\[\\[grids\\]\\]"):
            CampaignSpec.from_payload(minimal_payload(grids=[]))

    def test_duplicate_grid_names_rejected(self):
        payload = minimal_payload()
        payload["grids"].append(dict(payload["grids"][0]))
        with pytest.raises(CampaignSpecError, match="duplicate grid name"):
            CampaignSpec.from_payload(payload)

    def test_unknown_grid_key_rejected(self):
        payload = minimal_payload()
        payload["grids"][0]["sizzes"] = [8]
        with pytest.raises(CampaignSpecError, match="sizzes"):
            CampaignSpec.from_payload(payload)

    def test_unknown_algorithm_carries_source(self):
        payload = minimal_payload()
        payload["grids"][0]["algorithms"] = ["nope"]
        with pytest.raises(CampaignSpecError, match="spec.toml"):
            CampaignSpec.from_payload(payload, source="spec.toml")

    def test_seeds_and_repeats_conflict(self):
        payload = minimal_payload()
        payload["grids"][0]["repeats"] = 2
        with pytest.raises(CampaignSpecError, match="both 'seeds' and 'repeats'"):
            CampaignSpec.from_payload(payload)

    def test_repeats_expands_like_integer_seeds(self):
        payload = minimal_payload()
        del payload["grids"][0]["seeds"]
        payload["grids"][0]["repeats"] = 3
        spec = CampaignSpec.from_payload(payload)
        assert [job.seed for job in spec.compile()["g"]] == [0, 1, 2]

    def test_unknown_order_rejected(self):
        payload = minimal_payload()
        payload["grids"][0]["order"] = "sideways"
        with pytest.raises(CampaignSpecError, match="unknown order"):
            CampaignSpec.from_payload(payload)

    def test_fit_must_reference_a_declared_grid(self):
        payload = minimal_payload(
            fits=[{"name": "f", "grid": "ghost"}]
        )
        with pytest.raises(CampaignSpecError, match="unknown grid 'ghost'"):
            CampaignSpec.from_payload(payload)

    def test_fit_model_must_be_registered(self):
        payload = minimal_payload(
            fits=[{"name": "f", "grid": "g", "model": "cubic"}]
        )
        with pytest.raises(CampaignSpecError, match="unknown model 'cubic'"):
            CampaignSpec.from_payload(payload)

    def test_unknown_driver_kind_rejected(self):
        payload = minimal_payload(drivers=[{"kind": "anneal", "name": "d"}])
        with pytest.raises(CampaignSpecError, match="unknown driver kind"):
            CampaignSpec.from_payload(payload)

    def test_derived_sizes_need_base_and_doublings(self):
        payload = minimal_payload()
        payload["grids"][0]["sizes"] = {"base": 8}
        with pytest.raises(CampaignSpecError, match="doublings"):
            CampaignSpec.from_payload(payload)


class TestOrdering:
    def test_shuffled_order_is_deterministic_and_a_permutation(self):
        payload = minimal_payload()
        payload["grids"][0].update({"sizes": [8, 10, 12, 14], "order": "shuffled"})
        spec = CampaignSpec.from_payload(payload)
        grid = spec.grids[0]
        canonical = grid.specs()
        once = grid.execution_order(canonical, spec.name)
        twice = grid.execution_order(canonical, spec.name)
        assert [job.key for job in once] == [job.key for job in twice]
        assert sorted(job.key for job in once) == sorted(
            job.key for job in canonical
        )
        assert [job.key for job in once] != [job.key for job in canonical]

    def test_reversed_order(self):
        payload = minimal_payload()
        payload["grids"][0].update({"sizes": [8, 10], "order": "reversed"})
        grid = CampaignSpec.from_payload(payload).grids[0]
        canonical = grid.specs()
        assert [job.key for job in grid.execution_order(canonical, "t")] == [
            job.key for job in reversed(canonical)
        ]
