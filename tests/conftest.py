"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.graphs import (
    path_graph,
    random_connected_graph,
    random_tree,
    ring_graph,
    star_graph,
)

# Simulation-backed property tests are slower than hypothesis' default
# expectations; register profiles once for the whole suite.
settings.register_profile(
    "sim",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("sim")


@pytest.fixture
def small_ring():
    return ring_graph(8, seed=1)


@pytest.fixture
def small_path():
    return path_graph(7, seed=2)


@pytest.fixture
def small_star():
    return star_graph(9, seed=3)


@pytest.fixture
def small_tree():
    return random_tree(10, seed=4)


@pytest.fixture
def small_random_graph():
    return random_connected_graph(16, extra_edge_prob=0.2, seed=5)


def pytest_addoption(parser):
    parser.addoption(
        "--slow",
        action="store_true",
        default=False,
        help="also run tests marked slow (larger n)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: larger, slower scaling tests")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
