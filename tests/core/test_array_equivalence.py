"""Property testing: coroutine engine ≡ array engine on random cells.

Hypothesis draws (family, n, seed, termination) cells at n <= 64 on the
perfect channel — the array backend's full supported envelope — and both
backends must agree on every observable: the MST edge set, the whole
``Metrics.summary()``, and each node's awake count.  This is the same
differential-testing posture as :mod:`tests.sim.test_reference_engine`
(sparse vs dense engine), one level up the stack.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core import run_randomized_mst
from repro.graphs import mst_weight_set
from repro.orchestrator import GRAPH_FAMILIES

FAMILIES = ("path", "ring", "star", "complete", "grid", "gnp", "geometric")

cells = st.tuples(
    st.sampled_from(FAMILIES),
    st.integers(min_value=3, max_value=64),
    st.integers(min_value=0, max_value=10**6),
    st.sampled_from(("adaptive", "fixed")),
)


@given(cell=cells)
@settings(max_examples=30, deadline=None)
def test_backends_agree_on_random_cells(cell):
    family, n, seed, termination = cell
    graph = GRAPH_FAMILIES[family](n, seed, None)
    coroutine = run_randomized_mst(graph, seed=seed, termination=termination)
    array = run_randomized_mst(
        graph, seed=seed, termination=termination, engine="array"
    )

    assert array.mst_weights == coroutine.mst_weights
    assert array.mst_weights == mst_weight_set(graph)
    assert array.metrics.summary() == coroutine.metrics.summary()
    for node in graph.node_ids:
        assert (
            array.metrics.per_node[node].awake_rounds
            == coroutine.metrics.per_node[node].awake_rounds
        ), f"awake count diverged at node {node}"


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_coin_sequences_agree_across_seeds(seed):
    """Merge structure is coin-driven: any RNG drift shows up as a phase
    count or per-node awake difference long before outputs differ."""
    graph = GRAPH_FAMILIES["gnp"](32, seed % 17, None)
    coroutine = run_randomized_mst(graph, seed=seed)
    array = run_randomized_mst(graph, seed=seed, engine="array")
    assert array.phases == coroutine.phases
    assert array.metrics.max_awake == coroutine.metrics.max_awake
    assert array.metrics.total_bits == coroutine.metrics.total_bits
