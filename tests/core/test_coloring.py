"""Fast-Awake-Coloring: proper 5-colouring of the fragment supergraph."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coloring import (
    BLUE,
    GREEN,
    PALETTE,
    fast_awake_coloring,
    highest_priority_free_color,
)
from repro.core.harness import FLDTPlan, run_procedure
from repro.graphs import WeightedGraph, path_graph, random_tree, ring_graph


def color_singletons(graph):
    """Colour the supergraph where every node is a fragment and every graph
    edge is a valid MOE (requires max degree <= 4)."""

    def procedure(ctx, ldt, clock, value):
        neighbor_fragments = set(graph.neighbors(ctx.node_id))
        gprime_ports = set(ctx.ports)
        outcome = yield from fast_awake_coloring(
            ctx, ldt, clock, neighbor_fragments, gprime_ports
        )
        return outcome

    plan = FLDTPlan.singletons(graph)
    return run_procedure(graph, plan, procedure, refresh_neighbors=False)


class TestGreedyRule:
    def test_empty_neighbourhood_gets_blue(self):
        assert highest_priority_free_color([]) == BLUE

    def test_skips_taken_colors(self):
        assert highest_priority_free_color([BLUE]) == PALETTE[1]
        assert highest_priority_free_color(PALETTE[:4]) == GREEN

    def test_degree_five_exhausts_palette(self):
        with pytest.raises(RuntimeError, match="free colour"):
            highest_priority_free_color(PALETTE)

    @given(
        taken=st.lists(
            st.sampled_from(PALETTE), max_size=4, unique=True
        ),
        noise=st.lists(st.integers(min_value=5, max_value=100), max_size=4),
    )
    def test_returns_lowest_free_palette_color(self, taken, noise):
        """The greedy rule, as a property: the result is the *first*
        palette colour not taken, regardless of off-palette noise."""
        chosen = highest_priority_free_color(taken + noise)
        assert chosen in PALETTE
        assert chosen not in taken
        taken_set = set(taken)
        expected = next(color for color in PALETTE if color not in taken_set)
        assert chosen == expected


class TestColoringOnSupergraphs:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(7, seed=1),
            lambda: ring_graph(8, seed=2),
            lambda: random_tree(9, seed=3),
        ],
    )
    def test_proper_coloring(self, graph_factory):
        graph = graph_factory()
        run = color_singletons(graph)
        colors = {node: run.returns[node][0] for node in graph.node_ids}
        for edge in graph.edges():
            assert colors[edge.u] != colors[edge.v]
        assert set(colors.values()) <= set(PALETTE)

    def test_greedy_order_by_id(self):
        """Lowest ID in a component always gets Blue; a fragment's colour is
        the best one its lower-ID neighbours left available."""
        graph = path_graph(5, seed=4)
        run = color_singletons(graph)
        colors = {node: run.returns[node][0] for node in graph.node_ids}
        assert colors[min(graph.node_ids)] == BLUE

    def test_every_component_has_a_blue(self):
        graph = ring_graph(9, seed=5)
        run = color_singletons(graph)
        colors = [run.returns[node][0] for node in graph.node_ids]
        assert BLUE in colors

    def test_nbr_colors_reported_back(self):
        graph = path_graph(4, seed=6)
        run = color_singletons(graph)
        colors = {node: run.returns[node][0] for node in graph.node_ids}
        for node in graph.node_ids:
            _, nbr_colors = run.returns[node]
            for neighbour, color in nbr_colors.items():
                # Only lower-ID neighbours were coloured before our stage,
                # but by the end we also heard higher-ID neighbours' stages.
                assert colors[neighbour] == color
            assert set(nbr_colors) == set(graph.neighbors(node))

    def test_awake_cost_bounded_by_stage_participation(self):
        """<= 5 stages x <= 5 blocks x <= 2 awake rounds each."""
        graph = ring_graph(12, seed=7)
        run = color_singletons(graph)
        assert run.simulation.metrics.max_awake <= 5 * 5 * 2

    def test_rounds_scale_with_max_id(self):
        small = color_singletons(ring_graph(6, seed=8))
        large = color_singletons(ring_graph(6, seed=8, id_range=60))
        assert (
            large.simulation.metrics.rounds
            > small.simulation.metrics.rounds
        )

    def test_isolated_fragment_is_blue(self):
        """A fragment with no valid MOEs (singleton in G') colours Blue."""
        graph = path_graph(3, seed=9)

        def procedure(ctx, ldt, clock, value):
            outcome = yield from fast_awake_coloring(
                ctx, ldt, clock, set(), set()
            )
            return outcome

        plan = FLDTPlan.singletons(graph)
        run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
        assert all(color == BLUE for color, _ in run.returns.values())

    @given(seed=st.integers(min_value=0, max_value=10**5))
    def test_random_trees_proper(self, seed):
        graph = random_tree(8, seed=seed)
        if max(graph.degree(node) for node in graph.node_ids) > 4:
            return  # coloring assumes supergraph degree <= 4
        run = color_singletons(graph)
        colors = {node: run.returns[node][0] for node in graph.node_ids}
        for edge in graph.edges():
            assert colors[edge.u] != colors[edge.v]


class TestMultiNodeFragments:
    def test_two_chain_fragments_color_differently(self):
        graph = path_graph(6, seed=10)
        ids = graph.node_ids
        parents = {ids[0]: None, ids[3]: None}
        for i in (1, 2):
            parents[ids[i]] = ids[i - 1]
        for i in (4, 5):
            parents[ids[i]] = ids[i - 1]
        plan = FLDTPlan(parents)
        boundary = {ids[2]: ids[3], ids[3]: ids[2]}

        def procedure(ctx, ldt, clock, value):
            neighbor_fragments = (
                {ids[3]} if ldt.fragment_id == ids[0] else {ids[0]}
            )
            gprime_ports = set()
            if ctx.node_id in boundary:
                gprime_ports = {
                    port
                    for port, (neighbour, _, _) in graph.ports_of(
                        ctx.node_id
                    ).items()
                    if neighbour == boundary[ctx.node_id]
                }
            outcome = yield from fast_awake_coloring(
                ctx, ldt, clock, neighbor_fragments, gprime_ports
            )
            return outcome

        run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
        colors = {node: run.returns[node][0] for node in ids}
        # Members agree within fragments; fragments differ.
        assert colors[ids[0]] == colors[ids[1]] == colors[ids[2]] == BLUE
        assert colors[ids[3]] == colors[ids[4]] == colors[ids[5]] != BLUE
