"""Scenario tests hitting Deterministic-MST's distinctive code paths.

Each scenario is engineered so a specific mechanism *must* fire: the
3-token cap, the singleton second merge, mutual MOEs, path-shaped
supergraphs.  They complement the random-graph tests, which may not
exercise these paths at small sizes.
"""

from __future__ import annotations

import pytest

from repro.core import run_deterministic_mst
from repro.graphs import (
    WeightedGraph,
    adversarial_moe_chain,
    mst_weight_set,
    path_graph,
    star_graph,
)


class TestStarOfFragments:
    """A star: every leaf's MOE targets the hub — far more than 3 incoming
    MOEs, so the token cap and the singleton second merge both fire in
    phase 1."""

    @pytest.mark.parametrize("n", [6, 10, 16])
    def test_star_completes_in_few_phases(self, n):
        graph = star_graph(n, seed=n)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == mst_weight_set(graph)
        # Only Blue fragments merge each phase, so the star is NOT a
        # one-phase instance — but the singleton second merge absorbs all
        # unselected leaves every phase, keeping the count tiny.
        assert result.phases <= 5

    def test_star_awake_flat_in_n(self):
        small = run_deterministic_mst(star_graph(6, seed=1))
        large = run_deterministic_mst(star_graph(24, seed=1))
        assert large.metrics.max_awake <= 2 * small.metrics.max_awake


class TestChainOfFragments:
    """Monotone weights on a path: fragment i's MOE points right, so every
    fragment has exactly one incoming MOE (all valid) and G' is a path —
    the colouring must break the symmetry."""

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_chain_correct(self, n):
        graph = adversarial_moe_chain(n, seed=n)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == mst_weight_set(graph)

    def test_chain_needs_multiple_phases(self):
        """Unlike the always-awake full merge (which collapses the chain in
        one phase), the degree-bounded sleeping merge needs Θ(log n)."""
        graph = adversarial_moe_chain(32, seed=1)
        result = run_deterministic_mst(graph)
        assert result.phases >= 4


class TestMutualMOE:
    def test_two_nodes_mutual(self):
        """n = 2: the single edge is the MOE of both fragments — the
        mutual-MOE dedup path in NBR-INFO."""
        graph = path_graph(2, seed=1)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == {graph.edges()[0].weight}
        assert result.phases == 2

    def test_mutual_pairs_chain(self):
        """Pairs with a light internal edge and heavy links: phase 1 is
        all mutual-MOE merges."""
        # Nodes 1..8; edges (2k-1, 2k) light, links heavy ascending.
        nodes = list(range(1, 9))
        edges = []
        for k in range(4):
            edges.append((2 * k + 1, 2 * k + 2, k + 1))  # light pair edges
        for k in range(3):
            edges.append((2 * k + 2, 2 * k + 3, 100 + k))  # heavy links
        graph = WeightedGraph(nodes, edges)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == mst_weight_set(graph)


class TestTokenCapObservable:
    def test_singleton_merge_absorbs_unselected_leaves(self):
        """A 5-leaf star: the hub selects at most 3 incoming MOEs as
        valid, so ≥ 2 leaves are G'-singletons — yet after one phase they
        are all gone (the second merging pass absorbed them), leaving far
        fewer fragments than the 6 we started with."""
        graph = star_graph(6, seed=2)  # hub + 5 leaves
        one_phase = run_deterministic_mst(graph, max_phases=1)
        fragments = {
            out.fragment_id for out in one_phase.node_outputs.values()
        }
        # Strictly fewer fragments than nodes, and the hub's fragment
        # holds more than the <= 4 nodes merge #1 alone could give it.
        assert len(fragments) < graph.n - 1
        sizes = {}
        for out in one_phase.node_outputs.values():
            sizes[out.fragment_id] = sizes.get(out.fragment_id, 0) + 1
        assert max(sizes.values()) >= 3
