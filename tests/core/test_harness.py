"""The FLDT harness itself: plan building and procedure execution."""

from __future__ import annotations

import pytest

from repro.core import NOTHING
from repro.core.harness import FLDTPlan, run_procedure
from repro.core.toolbox import upcast_min
from repro.graphs import WeightedGraph, path_graph, random_tree


class TestFLDTPlan:
    def test_singletons(self):
        graph = path_graph(4, seed=1)
        states = FLDTPlan.singletons(graph).build_states(graph)
        assert all(state.is_root for state in states.values())
        assert all(state.level == 0 for state in states.values())

    def test_single_tree_levels_are_bfs_depths(self):
        graph = random_tree(9, seed=2)
        root = graph.node_ids[0]
        states = FLDTPlan.single_tree(graph, root).build_states(graph)
        depths = graph.bfs_distances(root)
        assert {n: s.level for n, s in states.items()} == depths

    def test_parent_must_be_adjacent(self):
        graph = path_graph(3, seed=3)
        ids = graph.node_ids
        plan = FLDTPlan({ids[0]: None, ids[1]: ids[0], ids[2]: ids[0]})
        with pytest.raises(ValueError, match="not adjacent"):
            plan.build_states(graph)

    def test_cycle_detected(self):
        graph = path_graph(3, seed=4)
        ids = graph.node_ids
        plan = FLDTPlan({ids[0]: ids[1], ids[1]: ids[0], ids[2]: ids[1]})
        with pytest.raises(ValueError, match="cycle"):
            plan.build_states(graph)

    def test_single_tree_requires_connected(self):
        graph = WeightedGraph([1, 2, 3, 4], [(1, 2, 1), (3, 4, 2)])
        with pytest.raises(ValueError, match="disconnected"):
            FLDTPlan.single_tree(graph, 1)


class TestRunProcedure:
    def test_returns_and_states(self):
        graph = path_graph(4, seed=5)
        root = graph.node_ids[0]
        plan = FLDTPlan.single_tree(graph, root)
        inputs = {node: node for node in graph.node_ids}

        def proc(ctx, ldt, clock, value):
            result = yield from upcast_min(ctx, ldt, clock.take(), value)
            return result

        run = run_procedure(graph, plan, proc, inputs=inputs, refresh_neighbors=False)
        assert run.returns[root] == min(graph.node_ids)
        assert run.states[root].is_root

    def test_repeat_collects_list(self):
        graph = path_graph(3, seed=6)
        plan = FLDTPlan.single_tree(graph, graph.node_ids[0])

        def proc(ctx, ldt, clock, value):
            result = yield from upcast_min(ctx, ldt, clock.take(), ctx.node_id)
            return result

        run = run_procedure(
            graph, plan, proc, repeat=3, refresh_neighbors=False
        )
        root_results = run.returns[graph.node_ids[0]]
        assert isinstance(root_results, list) and len(root_results) == 3
        assert len(set(root_results)) == 1  # idempotent procedure

    def test_states_do_not_alias_plan(self):
        """Mutating the run's states must not leak into fresh builds."""
        graph = path_graph(3, seed=7)
        plan = FLDTPlan.single_tree(graph, graph.node_ids[0])

        def proc(ctx, ldt, clock, value):
            ldt.children_ports.add(99) if False else None
            return NOTHING
            yield  # pragma: no cover

        first = plan.build_states(graph)
        second = plan.build_states(graph)
        first[graph.node_ids[0]].children_ports.clear()
        assert second[graph.node_ids[0]].children_ports
