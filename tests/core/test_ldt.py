"""LDT state and the global FLDT invariant checker."""

from __future__ import annotations

import pytest

from repro.core import LDTState, check_fldt, fragment_tree_edges
from repro.core.harness import FLDTPlan
from repro.graphs import path_graph, random_tree, ring_graph, star_graph


class TestLDTState:
    def test_singleton_defaults(self):
        state = LDTState.singleton(7)
        assert state.fragment_id == 7
        assert state.level == 0
        assert state.is_root
        assert state.tree_ports() == set()

    def test_tree_ports_include_parent_and_children(self):
        state = LDTState(node_id=1, fragment_id=9, level=2, parent_port=0)
        state.children_ports = {1, 3}
        assert state.tree_ports() == {0, 1, 3}

    def test_outgoing_ports_filter_by_fragment(self):
        state = LDTState.singleton(1)
        state.record_neighbor(0, 1, 3)   # same fragment
        state.record_neighbor(1, 42, 0)  # other fragment
        assert state.outgoing_ports((0, 1)) == [1]

    def test_record_neighbor_updates_cache(self):
        state = LDTState.singleton(1)
        state.record_neighbor(2, 55, 4)
        assert state.neighbor_fragment[2] == 55
        assert state.neighbor_level[2] == 4


class TestCheckFLDT:
    def test_accepts_singletons(self):
        graph = ring_graph(6, seed=1)
        states = FLDTPlan.singletons(graph).build_states(graph)
        fragments = check_fldt(graph, states)
        assert len(fragments) == 6

    def test_accepts_bfs_tree(self):
        graph = random_tree(12, seed=2)
        root = graph.node_ids[0]
        states = FLDTPlan.single_tree(graph, root).build_states(graph)
        fragments = check_fldt(graph, states)
        assert set(fragments) == {root}
        assert fragments[root] == set(graph.node_ids)

    def test_rejects_wrong_level(self):
        graph = path_graph(4, seed=1)
        root = graph.node_ids[0]
        states = FLDTPlan.single_tree(graph, root).build_states(graph)
        victim = next(n for n, s in states.items() if s.level == 2)
        states[victim].level = 5
        with pytest.raises(AssertionError, match="level"):
            check_fldt(graph, states)

    def test_rejects_asymmetric_pointers(self):
        graph = path_graph(3, seed=1)
        root = graph.node_ids[0]
        states = FLDTPlan.single_tree(graph, root).build_states(graph)
        states[root].children_ports = set()  # drop the child link
        with pytest.raises(AssertionError):
            check_fldt(graph, states)

    def test_rejects_root_with_nonzero_level(self):
        graph = path_graph(2, seed=1)
        states = FLDTPlan.singletons(graph).build_states(graph)
        states[graph.node_ids[0]].level = 1
        with pytest.raises(AssertionError, match="root"):
            check_fldt(graph, states)

    def test_rejects_fragment_id_not_root_id(self):
        graph = path_graph(2, seed=1)
        states = FLDTPlan.singletons(graph).build_states(graph)
        states[graph.node_ids[0]].fragment_id = 999
        with pytest.raises(AssertionError):
            check_fldt(graph, states)

    def test_rejects_two_roots_in_fragment(self):
        graph = path_graph(3, seed=1)
        root = graph.node_ids[0]
        states = FLDTPlan.single_tree(graph, root).build_states(graph)
        leaf = next(n for n, s in states.items() if s.level == 2)
        # Leaf declares itself a root while keeping the fragment ID.
        parent_port = states[leaf].parent_port
        states[leaf].parent_port = None
        states[leaf].level = 0
        with pytest.raises(AssertionError):
            check_fldt(graph, states)

    def test_rejects_port_doubling_as_parent_and_child(self):
        graph = path_graph(2, seed=1)
        root = graph.node_ids[0]
        states = FLDTPlan.single_tree(graph, root).build_states(graph)
        child = next(n for n, s in states.items() if not s.is_root)
        states[child].children_ports = {states[child].parent_port}
        with pytest.raises(AssertionError, match="both parent and child"):
            check_fldt(graph, states)


class TestFragmentTreeEdges:
    def test_star_tree_edges(self):
        graph = star_graph(6, seed=1)
        hub = next(n for n in graph.node_ids if graph.degree(n) == 5)
        states = FLDTPlan.single_tree(graph, hub).build_states(graph)
        assert fragment_tree_edges(graph, states) == {
            edge.weight for edge in graph.edges()
        }

    def test_singletons_have_no_tree_edges(self):
        graph = ring_graph(5, seed=1)
        states = FLDTPlan.singletons(graph).build_states(graph)
        assert fragment_tree_edges(graph, states) == set()
