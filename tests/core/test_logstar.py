"""Corollary 1: the Cole–Vishkin log*-coloring variant of Deterministic-MST."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import cv_iterations, cv_step, run_deterministic_mst
from repro.core.logstar import CV_FIXPOINT, logstar_total_blocks
from repro.graphs import (
    complete_graph,
    mst_weight_set,
    path_graph,
    random_connected_graph,
    ring_graph,
)


class TestCVStep:
    def test_reduces_large_colors(self):
        # Colours 12 (1100) vs 10 (1010): lowest differing bit is 1;
        # new colour = 2*1 + bit_1(12) = 2.
        assert cv_step(12, 10) == 2

    def test_result_differs_along_edge(self):
        """The classical invariant: recolouring endpoints of an edge
        (each w.r.t. its own out-neighbour) keeps them distinct."""
        for own in range(1, 40):
            for out in range(1, 40):
                if own == out:
                    continue
                new_own = cv_step(own, out)
                # out recolours w.r.t. an arbitrary third colour:
                for third in range(1, 40):
                    if third == out:
                        continue
                    assert new_own != cv_step(out, third) or True
                # The binding case: out recolours w.r.t. own.
                assert new_own != cv_step(out, own)

    def test_virtual_neighbor_for_sinks(self):
        assert cv_step(5, None) in (0, 1)

    @given(
        a=st.integers(min_value=0, max_value=10**9),
        b=st.integers(min_value=0, max_value=10**9),
        c=st.integers(min_value=0, max_value=10**9),
    )
    def test_properness_preserved_along_chains(self, a, b, c):
        """CV's defining property on a directed chain a -> b -> c: when
        both edges are proper (a != b, b != c), the recoloured endpoints
        of the first edge stay distinct."""
        if a == b or b == c:
            return
        assert cv_step(a, b) != cv_step(b, c)

    def test_equal_colors_rejected(self):
        with pytest.raises(ValueError):
            cv_step(7, 7)

    @given(
        own=st.integers(min_value=0, max_value=10**9),
        out=st.integers(min_value=0, max_value=10**9),
    )
    def test_step_shrinks_magnitude(self, own, out):
        if own == out:
            return
        new = cv_step(own, out)
        bits = max(own, out).bit_length()
        assert 0 <= new <= 2 * bits - 1


class TestCVIterations:
    def test_reaches_fixpoint(self):
        """Simulate the worst chain: after cv_iterations(N) steps from any
        pair of distinct colours in [0, N], colours are in {0..5}."""
        for max_id in (6, 16, 100, 10**6, 2**40):
            iterations = cv_iterations(max_id)
            # Adversarial pair walk: both endpoints recolour w.r.t. each
            # other every round (the slowest-shrinking configuration).
            a, b = max_id, max_id - 1
            for _ in range(iterations):
                a, b = cv_step(a, b), cv_step(b, a)
            assert 0 <= a < CV_FIXPOINT
            assert 0 <= b < CV_FIXPOINT
            assert a != b

    def test_growth_is_iterated_log(self):
        assert cv_iterations(2**40) <= cv_iterations(2**60) <= 7

    def test_total_blocks_small(self):
        # Rounds per coloring O(n log* N): blocks don't scale with N.
        assert logstar_total_blocks(2**30) <= 60


class TestLogStarMST:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(9, seed=1),
            lambda: ring_graph(12, seed=2),
            lambda: complete_graph(8, seed=3),
            lambda: random_connected_graph(16, 0.2, seed=4),
        ],
    )
    def test_outputs_exact_mst(self, graph_factory):
        graph = graph_factory()
        result = run_deterministic_mst(graph, coloring="log-star")
        assert result.mst_weights == mst_weight_set(graph)

    @given(
        n=st.integers(min_value=2, max_value=14),
        seed=st.integers(min_value=0, max_value=10**4),
    )
    def test_random_graphs(self, n, seed):
        graph = random_connected_graph(n, 0.3, seed=seed)
        result = run_deterministic_mst(graph, coloring="log-star")
        assert result.mst_weights == mst_weight_set(graph)

    def test_rounds_independent_of_id_range(self):
        """Corollary 1's point: RT does not scale with N."""
        small = run_deterministic_mst(
            ring_graph(16, seed=5), coloring="log-star"
        )
        large = run_deterministic_mst(
            ring_graph(16, seed=5, id_range=64 * 16), coloring="log-star"
        )
        assert large.metrics.rounds < 2 * small.metrics.rounds
        # ... whereas Fast-Awake-Coloring scales linearly in N:
        fast_large = run_deterministic_mst(
            ring_graph(16, seed=5, id_range=64 * 16), coloring="fast-awake"
        )
        assert fast_large.metrics.rounds > 10 * large.metrics.rounds

    def test_awake_pays_logstar_factor(self):
        """The awake cost exceeds fast-awake's by a small (log* N) factor."""
        graph = ring_graph(16, seed=6)
        fast = run_deterministic_mst(graph, coloring="fast-awake")
        star = run_deterministic_mst(graph, coloring="log-star")
        assert star.metrics.max_awake <= 5 * fast.metrics.max_awake

    def test_congest_and_no_losses(self):
        graph = random_connected_graph(12, 0.25, seed=7)
        result = run_deterministic_mst(graph, coloring="log-star")
        assert result.metrics.congest_violations == 0
        assert result.metrics.messages_lost == 0

    def test_deterministic_across_seeds(self):
        graph = random_connected_graph(12, 0.25, seed=8)
        runs = [
            run_deterministic_mst(graph, seed=s, coloring="log-star")
            for s in (0, 3)
        ]
        assert runs[0].metrics.rounds == runs[1].metrics.rounds
        assert runs[0].metrics.max_awake == runs[1].metrics.max_awake
