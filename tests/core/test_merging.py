"""Merging-Fragments: re-rooting, level arithmetic, multi-merge stars."""

from __future__ import annotations

import pytest

from repro.core import check_fldt, merging_fragments
from repro.core.harness import FLDTPlan, run_procedure
from repro.graphs import WeightedGraph, path_graph

from repro.analysis.walkthrough import (
    build_walkthrough_instance,
    run_merging_walkthrough,
)


def merge_procedure(graph, merges, tails_fragments):
    """Build a harness procedure: ``merges`` maps u_T -> u_H node IDs."""

    def procedure(ctx, ldt, clock, value):
        merge_port = None
        if ctx.node_id in merges:
            target = merges[ctx.node_id]
            merge_port = next(
                port
                for port, (neighbour, _, _) in graph.ports_of(ctx.node_id).items()
                if neighbour == target
            )
        merging = ldt.fragment_id in tails_fragments
        outcome = yield from merging_fragments(
            ctx, ldt, clock, merge_port=merge_port, fragment_merging=merging
        )
        return outcome

    return procedure


class TestWalkthrough:
    def test_reproduces_figures_2_to_5(self):
        """The Appendix C scenario merges exactly as drawn."""
        walkthrough = run_merging_walkthrough()
        after = walkthrough.after
        # Figure 5: single fragment, rooted at the Heads root (10).
        assert all(s.fragment_id == 10 for s in after.values())
        # u_T hangs under u_H.
        assert after[walkthrough.u_tails].parent == walkthrough.u_heads
        assert after[walkthrough.u_tails].level == 2
        # Old tails root (1) is now a descendant at its tails-distance.
        assert after[1].level == 1 + 1 + walkthrough.tails_distance[1]

    def test_path_reversal(self):
        walkthrough = run_merging_walkthrough()
        # The path 5 -> 2 -> 1 had its parent pointers reversed.
        assert walkthrough.before[2].parent == 1
        assert walkthrough.after[2].parent == 5
        assert walkthrough.after[1].parent == 2

    def test_off_path_nodes_keep_parents(self):
        walkthrough = run_merging_walkthrough()
        assert walkthrough.after[4].parent == walkthrough.before[4].parent == 2
        assert walkthrough.after[3].parent == walkthrough.before[3].parent == 1

    def test_heads_fragment_untouched_except_new_child(self):
        walkthrough = run_merging_walkthrough()
        for node in (10, 11, 12):
            assert walkthrough.after[node].level == walkthrough.before[node].level
            assert walkthrough.after[node].parent == walkthrough.before[node].parent


class TestStarMerge:
    def test_multiple_tails_into_one_heads(self):
        """Three singleton tails fragments merge into one heads fragment
        simultaneously — the star shape the coin flips guarantee."""
        #      2   3   4      all merge into hub 1 (heads)
        graph = WeightedGraph(
            [1, 2, 3, 4], [(1, 2, 10), (1, 3, 11), (1, 4, 12)]
        )
        plan = FLDTPlan.singletons(graph)
        merges = {2: 1, 3: 1, 4: 1}
        run = run_procedure(
            graph,
            plan,
            merge_procedure(graph, merges, tails_fragments={2, 3, 4}),
            refresh_neighbors=False,
        )
        fragments = check_fldt(graph, run.states)
        assert set(fragments) == {1}
        assert all(run.states[n].level == 1 for n in (2, 3, 4))

    def test_deep_tails_fragment_merges_whole(self):
        """A 5-node chain fragment merges into a singleton heads fragment."""
        graph = path_graph(6, seed=3)
        ids = graph.node_ids
        # Chain fragment rooted at ids[0] covering ids[0..4]; heads = ids[5].
        parents = {ids[0]: None, ids[5]: None}
        for i in range(1, 5):
            parents[ids[i]] = ids[i - 1]
        plan = FLDTPlan(parents)
        merges = {ids[4]: ids[5]}
        run = run_procedure(
            graph,
            plan,
            merge_procedure(graph, merges, tails_fragments={ids[0]}),
            refresh_neighbors=False,
        )
        fragments = check_fldt(graph, run.states)
        assert set(fragments) == {ids[5]}
        # Levels: ids[5] root (0), ids[4] its child (1), back up the chain.
        for offset, node in enumerate(reversed(ids[:5]), start=1):
            assert run.states[node].level == offset

    def test_merge_costs_constant_awake(self):
        graph = path_graph(10, seed=4)
        ids = graph.node_ids
        parents = {ids[0]: None, ids[9]: None}
        for i in range(1, 9):
            parents[ids[i]] = ids[i - 1]
        plan = FLDTPlan(parents)
        merges = {ids[8]: ids[9]}
        run = run_procedure(
            graph,
            plan,
            merge_procedure(graph, merges, tails_fragments={ids[0]}),
            refresh_neighbors=False,
        )
        # TA (1) + up pass (<=2) + down pass (<=2).
        assert run.simulation.metrics.max_awake <= 5


class TestMergeValidation:
    def test_merge_port_without_flag_rejected(self):
        graph = path_graph(2, seed=1)
        plan = FLDTPlan.singletons(graph)

        def procedure(ctx, ldt, clock, value):
            outcome = yield from merging_fragments(
                ctx, ldt, clock, merge_port=0, fragment_merging=False
            )
            return outcome

        with pytest.raises(Exception, match="fragment_merging"):
            run_procedure(graph, plan, procedure, refresh_neighbors=False)

    def test_merging_fragment_without_edge_detected(self):
        """fragment_merging=True but nobody injects a merge: protocol bug."""
        graph = path_graph(3, seed=2)
        plan = FLDTPlan.singletons(graph)

        def procedure(ctx, ldt, clock, value):
            outcome = yield from merging_fragments(
                ctx, ldt, clock, merge_port=None, fragment_merging=True
            )
            return outcome

        with pytest.raises(Exception, match="no new fragment values"):
            run_procedure(graph, plan, procedure, refresh_neighbors=False)

    def test_mutual_merge_detected(self):
        """Two fragments merging into each other is a protocol violation."""
        graph = path_graph(2, seed=3)
        ids = graph.node_ids

        def procedure(ctx, ldt, clock, value):
            outcome = yield from merging_fragments(
                ctx, ldt, clock, merge_port=0, fragment_merging=True
            )
            return outcome

        plan = FLDTPlan.singletons(graph)
        with pytest.raises(Exception, match="both merges away and receives|merges away"):
            run_procedure(graph, plan, procedure, refresh_neighbors=False)
