"""Property-based tests of Merging-Fragments on randomized configurations.

Strategy: build a random tree, split it into two fragments by cutting a
random edge, pick the cut edge as the merge edge, run the real procedure,
and check every post-condition (valid single LDT, level arithmetic,
orientation) — across many random shapes.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core import check_fldt, merging_fragments
from repro.core.harness import FLDTPlan, run_procedure
from repro.graphs import random_tree


def split_tree(graph, cut_edge, tails_root, heads_root):
    """Parent maps for the two fragments obtained by removing ``cut_edge``."""
    banned = frozenset(cut_edge)

    def bfs_parents(root):
        parents = {root: None}
        frontier = [root]
        while frontier:
            node = frontier.pop(0)
            for neighbour in graph.neighbors(node):
                if frozenset((node, neighbour)) == banned:
                    continue
                if neighbour not in parents:
                    parents[neighbour] = node
                    frontier.append(neighbour)
        return parents

    tails = bfs_parents(tails_root)
    heads = bfs_parents(heads_root)
    assert set(tails) | set(heads) == set(graph.node_ids)
    assert not set(tails) & set(heads)
    return tails, heads


@given(
    seed=st.integers(min_value=0, max_value=10**5),
    edge_index=st.integers(min_value=0, max_value=10**6),
    tails_root_index=st.integers(min_value=0, max_value=10**6),
    heads_root_index=st.integers(min_value=0, max_value=10**6),
)
def test_merge_produces_valid_ldt(seed, edge_index, tails_root_index, heads_root_index):
    graph = random_tree(9, seed=seed)
    edges = graph.edges()
    cut = edges[edge_index % len(edges)]

    tails_probe, heads_probe = split_tree(
        graph, cut.endpoints, cut.u, cut.v
    )
    tails_members = sorted(tails_probe)
    heads_members = sorted(heads_probe)
    # Random roots inside each side.
    tails_root = tails_members[tails_root_index % len(tails_members)]
    heads_root = heads_members[heads_root_index % len(heads_members)]
    tails_parents, heads_parents = split_tree(
        graph, cut.endpoints, tails_root, heads_root
    )
    plan = FLDTPlan({**tails_parents, **heads_parents})
    before = plan.build_states(graph)

    u_tails = cut.u if cut.u in tails_parents else cut.v
    u_heads = cut.other(u_tails)
    tails_fragment = before[u_tails].fragment_id

    def procedure(ctx, ldt, clock, value):
        merge_port = None
        if ctx.node_id == u_tails:
            merge_port = next(
                port
                for port, (neighbour, _, _) in graph.ports_of(u_tails).items()
                if neighbour == u_heads
            )
        merging = ldt.fragment_id == tails_fragment
        outcome = yield from merging_fragments(
            ctx, ldt, clock, merge_port=merge_port, fragment_merging=merging
        )
        return outcome

    run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
    fragments = check_fldt(graph, run.states)

    # One fragment, rooted at the heads root.
    assert set(fragments) == {before[u_heads].fragment_id}
    # Heads side untouched (levels preserved).
    for node in heads_parents:
        assert run.states[node].level == before[node].level
    # Tails side: level = level(u_heads) + 1 + old-tree distance from u_tails.
    distances = {u_tails: 0}
    frontier = [u_tails]
    while frontier:
        node = frontier.pop(0)
        for neighbour in graph.neighbors(node):
            if neighbour in tails_parents and neighbour not in distances:
                distances[neighbour] = distances[node] + 1
                frontier.append(neighbour)
    for node in tails_parents:
        expected = before[u_heads].level + 1 + distances[node]
        assert run.states[node].level == expected
    # Awake cost of the merge is O(1) regardless of shape.
    assert run.simulation.metrics.max_awake <= 5
