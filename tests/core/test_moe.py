"""Token-based incoming-MOE selection and NBR-INFO aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.harness import FLDTPlan, run_procedure
from repro.core.moe import (
    DIR_IN,
    DIR_OUT,
    MAX_VALID_INCOMING,
    merge_nbr_info,
    select_incoming_moes,
)
from repro.graphs import random_tree, star_graph


def selection_procedure(incoming_by_node):
    def procedure(ctx, ldt, clock, value):
        ports = incoming_by_node.get(ctx.node_id, [])
        selected = yield from select_incoming_moes(ctx, ldt, clock, ports)
        return selected

    return procedure


def run_selection(graph, root, incoming_by_node):
    plan = FLDTPlan.single_tree(graph, root)
    run = run_procedure(
        graph,
        plan,
        selection_procedure(incoming_by_node),
        refresh_neighbors=False,
    )
    return run


class TestTokenSelection:
    def test_all_accepted_when_at_most_three(self):
        graph = random_tree(8, seed=1)
        root = graph.node_ids[0]
        # Give two leaves one incoming MOE each (their first port).
        leaves = [n for n in graph.node_ids if graph.degree(n) == 1][:2]
        incoming = {leaf: [0] for leaf in leaves}
        run = run_selection(graph, root, incoming)
        for leaf in leaves:
            assert run.returns[leaf] == {0}

    def test_caps_at_three_fragment_wide(self):
        graph = star_graph(8, seed=2)
        hub = next(n for n in graph.node_ids if graph.degree(n) == 7)
        leaves = [n for n in graph.node_ids if n != hub]
        incoming = {leaf: [0] for leaf in leaves}  # 7 incoming MOEs
        run = run_selection(graph, hub, incoming)
        total_selected = sum(len(run.returns[leaf]) for leaf in leaves)
        assert total_selected == MAX_VALID_INCOMING

    def test_node_with_multiple_incoming_edges(self):
        graph = star_graph(6, seed=3)
        hub = next(n for n in graph.node_ids if graph.degree(n) == 5)
        incoming = {hub: [0, 1, 2, 3, 4]}  # five incoming edges at one node
        run = run_selection(graph, hub, incoming)
        assert len(run.returns[hub]) == MAX_VALID_INCOMING

    def test_canonical_choice_prefers_lightest(self):
        graph = star_graph(6, seed=4)
        hub = next(n for n in graph.node_ids if graph.degree(n) == 5)
        incoming = {hub: [0, 1, 2, 3, 4]}
        run = run_selection(graph, hub, incoming)
        weights = sorted(graph.ports_of(hub)[p][2] for p in range(5))
        selected_weights = sorted(
            graph.ports_of(hub)[p][2] for p in run.returns[hub]
        )
        assert selected_weights == weights[:MAX_VALID_INCOMING]

    def test_no_incoming_sends_nothing(self):
        """With no incoming MOEs anywhere, nothing is selected and no
        message flows; only internal nodes spend their one listening round
        (they cannot predict their children's silence)."""
        graph = random_tree(10, seed=5)
        root = graph.node_ids[0]
        run = run_selection(graph, root, {})
        assert all(selected == set() for selected in run.returns.values())
        assert run.simulation.metrics.messages_delivered == 0
        assert run.simulation.metrics.max_awake <= 1

    def test_deterministic_across_runs(self):
        graph = random_tree(9, seed=6)
        root = graph.node_ids[0]
        leaves = [n for n in graph.node_ids if graph.degree(n) == 1]
        incoming = {leaf: [0] for leaf in leaves}
        first = run_selection(graph, root, incoming)
        second = run_selection(graph, root, incoming)
        assert first.returns == second.returns

    @given(seed=st.integers(min_value=0, max_value=10**5))
    def test_selection_count_invariant(self, seed):
        """Property: min(3, total incoming) edges are selected, never more."""
        graph = random_tree(8, seed=seed)
        root = graph.node_ids[0]
        # Every node nominates all its ports as incoming MOEs.
        incoming = {
            node: sorted(graph.ports_of(node)) for node in graph.node_ids
        }
        total = sum(len(ports) for ports in incoming.values())
        run = run_selection(graph, root, incoming)
        selected = sum(len(s) for s in run.returns.values())
        assert selected == min(MAX_VALID_INCOMING, total)


class TestMergeNbrInfo:
    def test_union_and_sort(self):
        a = ((5, 100, DIR_IN),)
        b = ((3, 50, DIR_OUT),)
        assert merge_nbr_info(a, b) == ((3, 50, DIR_OUT), (5, 100, DIR_IN))

    def test_handles_none_identity(self):
        entries = ((1, 2, DIR_IN),)
        assert merge_nbr_info(None, entries) == entries
        assert merge_nbr_info(entries, None) == entries

    def test_deduplicates(self):
        entries = ((1, 2, DIR_IN),)
        assert merge_nbr_info(entries, entries) == entries

    def test_mutual_moe_two_entries_same_neighbor(self):
        """A mutual MOE appears once per direction — still within the cap."""
        a = ((7, 33, DIR_IN),)
        b = ((7, 33, DIR_OUT),)
        merged = merge_nbr_info(a, b)
        assert len(merged) == 2

    def test_overflow_raises(self):
        a = tuple((i, i * 10, DIR_IN) for i in range(1, 4))
        b = tuple((i, i * 10, DIR_IN) for i in range(4, 7))
        with pytest.raises(RuntimeError, match="overflow"):
            merge_nbr_info(a, b)


class TestIncomingMoePorts:
    def test_detects_incoming_by_weight_match(self):
        """A port carries an incoming MOE iff the neighbour (in another
        fragment) announced this very edge's weight as its fragment MOE."""
        from repro.core.moe import incoming_moe_ports
        from repro.core.ldt import LDTState
        from repro.sim.node import NodeContext
        from random import Random

        ctx = NodeContext(
            node_id=1,
            n=4,
            max_id=4,
            ports=(0, 1, 2),
            port_weights={0: 10, 1: 20, 2: 30},
            rng=Random(0),
        )
        ldt = LDTState.singleton(1)
        ldt.record_neighbor(0, 2, 0)  # other fragment
        ldt.record_neighbor(1, 1, 0)  # same fragment
        ldt.record_neighbor(2, 3, 0)  # other fragment
        neighbor_moe = {0: 10, 1: 20, 2: 99}  # port 2's MOE is elsewhere
        assert incoming_moe_ports(ctx, ldt, neighbor_moe) == [0]
