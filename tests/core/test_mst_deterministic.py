"""Deterministic-MST: correctness, determinism, ID-range dependence."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import run_deterministic_mst
from repro.core.mst_deterministic import (
    deterministic_blocks_per_phase,
    deterministic_phase_count,
)
from repro.graphs import (
    WeightedGraph,
    complete_graph,
    grid_graph,
    mst_weight_set,
    path_graph,
    random_connected_graph,
    ring_graph,
    star_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(10, seed=1),
            lambda: ring_graph(12, seed=2),
            lambda: star_graph(9, seed=3),
            lambda: complete_graph(8, seed=4),
            lambda: grid_graph(3, 4, seed=5),
            lambda: random_connected_graph(16, 0.2, seed=6),
        ],
    )
    def test_outputs_exact_mst(self, graph_factory):
        graph = graph_factory()
        result = run_deterministic_mst(graph)
        assert result.mst_weights == mst_weight_set(graph)

    @given(
        n=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=10**5),
    )
    def test_random_graphs(self, n, seed):
        graph = random_connected_graph(n, 0.3, seed=seed)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == mst_weight_set(graph)

    def test_two_nodes_mutual_moe(self):
        graph = path_graph(2, seed=7)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == {graph.edges()[0].weight}

    def test_single_node(self):
        graph = WeightedGraph([1], [])
        result = run_deterministic_mst(graph)
        assert result.mst_weights == set()

    def test_sparse_id_space(self):
        """IDs drawn from [1, 8n]: coloring runs 8n stages, still correct."""
        graph = ring_graph(8, seed=8, id_range=64)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == mst_weight_set(graph)

    def test_fully_deterministic(self):
        """No randomness anywhere: byte-identical metrics across runs and
        across seeds."""
        graph = random_connected_graph(12, 0.25, seed=9)
        runs = [run_deterministic_mst(graph, seed=s) for s in (0, 1, 42)]
        assert len({r.metrics.rounds for r in runs}) == 1
        assert len({r.metrics.max_awake for r in runs}) == 1
        assert len({frozenset(r.mst_weights) for r in runs}) == 1


class TestComplexity:
    def test_rounds_scale_with_id_range(self):
        """Theorem 2's N-dependence: same topology, larger N, more rounds."""
        small = run_deterministic_mst(ring_graph(8, seed=10))
        large = run_deterministic_mst(ring_graph(8, seed=10, id_range=80))
        assert large.metrics.rounds > 5 * small.metrics.rounds
        # ... while awake complexity stays flat (each node participates in
        # at most 5 coloring stages regardless of N).
        assert large.metrics.max_awake <= small.metrics.max_awake * 2

    def test_rounds_within_phase_budget(self):
        from repro.core.schedule import block_span

        graph = random_connected_graph(12, 0.2, seed=11)
        result = run_deterministic_mst(graph)
        budget = (
            result.phases
            * deterministic_blocks_per_phase(graph.max_id)
            * block_span(graph.n)
        )
        assert result.metrics.rounds <= budget

    def test_awake_logarithmic_shape(self):
        awakes = {}
        for n in (8, 32):
            graph = ring_graph(n, seed=n)
            awakes[n] = run_deterministic_mst(graph).metrics.max_awake
        assert awakes[32] / awakes[8] < 3.0

    def test_phase_count_formula_documented(self):
        assert deterministic_phase_count(1) == 0
        assert deterministic_phase_count(2) > 240000  # the paper's constant

    def test_congest_discipline_holds(self):
        graph = random_connected_graph(16, 0.2, seed=12)
        result = run_deterministic_mst(graph)
        assert result.metrics.congest_violations == 0

    def test_messages_never_lost(self):
        graph = random_connected_graph(14, 0.25, seed=13)
        result = run_deterministic_mst(graph)
        assert result.metrics.messages_lost == 0


class TestOptions:
    def test_unknown_coloring_rejected(self):
        graph = path_graph(3, seed=1)
        with pytest.raises(Exception, match="coloring"):
            run_deterministic_mst(graph, coloring="rainbow")

    def test_unknown_termination_rejected(self):
        graph = path_graph(3, seed=1)
        with pytest.raises(Exception, match="termination"):
            run_deterministic_mst(graph, termination="bogus")

    def test_max_phases_cap(self):
        graph = path_graph(10, seed=2)
        result = run_deterministic_mst(graph, max_phases=1)
        assert result.phases == 1
        assert result.mst_weights <= mst_weight_set(graph)

    def test_adaptive_phases_far_below_paper_budget(self):
        graph = random_connected_graph(16, 0.2, seed=14)
        result = run_deterministic_mst(graph)
        assert result.phases <= graph.n
        assert result.phases < deterministic_phase_count(graph.n)
