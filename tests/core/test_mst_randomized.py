"""Randomized-MST: correctness, complexity bounds, model conformance."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    randomized_phase_count,
    run_randomized_mst,
)
from repro.graphs import (
    WeightedGraph,
    adversarial_moe_chain,
    complete_graph,
    grid_graph,
    mst_weight_set,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    ring_graph,
    star_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(13, seed=1),
            lambda: ring_graph(16, seed=2),
            lambda: star_graph(11, seed=3),
            lambda: complete_graph(9, seed=4),
            lambda: grid_graph(4, 5, seed=5),
            lambda: random_connected_graph(20, 0.2, seed=6),
            lambda: random_geometric_graph(15, 0.4, seed=7),
            lambda: adversarial_moe_chain(14, seed=8),
        ],
    )
    def test_outputs_exact_mst(self, graph_factory):
        graph = graph_factory()
        result = run_randomized_mst(graph, seed=0)
        assert result.mst_weights == mst_weight_set(graph)

    @given(
        n=st.integers(min_value=2, max_value=24),
        seed=st.integers(min_value=0, max_value=10**5),
    )
    def test_random_graphs_random_seeds(self, n, seed):
        graph = random_connected_graph(n, 0.25, seed=seed)
        result = run_randomized_mst(graph, seed=seed)
        assert result.mst_weights == mst_weight_set(graph)

    def test_two_nodes(self):
        graph = path_graph(2, seed=1)
        result = run_randomized_mst(graph, seed=0)
        assert result.mst_weights == {graph.edges()[0].weight}

    def test_single_node(self):
        graph = WeightedGraph([1], [])
        result = run_randomized_mst(graph, seed=0)
        assert result.mst_weights == set()
        assert result.metrics.rounds == 0

    def test_every_node_knows_its_incident_mst_edges(self):
        """The paper's output convention, checked per node."""
        graph = random_connected_graph(14, 0.3, seed=9)
        result = run_randomized_mst(graph, seed=1)
        mst = mst_weight_set(graph)
        for node, output in result.node_outputs.items():
            incident_mst = {
                weight
                for (_, _, weight) in graph.ports_of(node).values()
                if weight in mst
            }
            assert output.mst_weights == incident_mst

    def test_final_fragment_is_global(self):
        graph = ring_graph(10, seed=10)
        result = run_randomized_mst(graph, seed=2)
        fragments = {out.fragment_id for out in result.node_outputs.values()}
        assert len(fragments) == 1

    def test_seed_reproducibility(self):
        graph = random_connected_graph(16, 0.2, seed=11)
        first = run_randomized_mst(graph, seed=5)
        second = run_randomized_mst(graph, seed=5)
        assert first.metrics.rounds == second.metrics.rounds
        assert first.metrics.max_awake == second.metrics.max_awake
        assert first.mst_weights == second.mst_weights


class TestTermination:
    def test_fixed_mode_runs_paper_budget(self):
        graph = path_graph(6, seed=1)
        result = run_randomized_mst(graph, seed=0, termination="fixed")
        assert result.phases == randomized_phase_count(6)
        assert result.mst_weights == mst_weight_set(graph)

    def test_adaptive_stops_early(self):
        graph = path_graph(6, seed=1)
        adaptive = run_randomized_mst(graph, seed=0, termination="adaptive")
        assert adaptive.phases < randomized_phase_count(6)

    def test_phase_budget_formula(self):
        assert randomized_phase_count(2) == 4 * math.ceil(
            math.log(2) / math.log(4 / 3)
        ) + 1
        assert randomized_phase_count(1) == 0

    def test_unknown_termination_rejected(self):
        graph = path_graph(3, seed=1)
        with pytest.raises(Exception, match="termination"):
            run_randomized_mst(graph, termination="bogus")

    def test_max_phases_override_may_leave_forest(self):
        graph = path_graph(12, seed=2)
        result = run_randomized_mst(graph, seed=0, max_phases=1)
        assert result.phases == 1
        # One phase cannot always finish; output is a sub-forest of the MST.
        assert result.mst_weights <= mst_weight_set(graph)


class TestComplexity:
    def test_awake_complexity_logarithmic_shape(self):
        """Doubling n adds O(1) phases: awake grows additively, not
        multiplicatively.  Averaged over seeds (the phase count is a random
        variable under adaptive termination)."""

        def mean_awake(n):
            runs = [
                run_randomized_mst(ring_graph(n, seed=n), seed=s).metrics.max_awake
                for s in range(3)
            ]
            return sum(runs) / len(runs)

        small, medium, large = mean_awake(16), mean_awake(64), mean_awake(256)
        # Θ(n)-awake behaviour would quadruple between points (16x overall);
        # O(log n) keeps the overall factor near 2.
        assert large / small < 6.0
        assert medium / small < 3.0

    def test_rounds_within_phase_budget(self):
        """Round complexity is exactly bounded by blocks/phase x span."""
        from repro.core.mst_randomized import PHASE_BLOCKS
        from repro.core.schedule import block_span

        graph = random_connected_graph(24, 0.2, seed=3)
        result = run_randomized_mst(graph, seed=0)
        assert result.metrics.rounds <= (
            result.phases * PHASE_BLOCKS * block_span(graph.n)
        )

    def test_awake_within_constant_per_phase(self):
        graph = random_connected_graph(24, 0.2, seed=4)
        result = run_randomized_mst(graph, seed=0)
        # Each phase costs every node at most ~20 awake rounds (9 blocks,
        # <=2 wakes each, plus merging).
        assert result.metrics.max_awake <= 20 * result.phases

    def test_phases_near_log_n(self):
        graph = random_connected_graph(64, 0.1, seed=5)
        result = run_randomized_mst(graph, seed=0)
        assert result.phases <= randomized_phase_count(64)

    def test_congest_discipline_holds(self):
        """Strict CONGEST checking is on by default and never trips."""
        graph = random_connected_graph(32, 0.15, seed=6)
        result = run_randomized_mst(graph, seed=0)
        assert result.metrics.congest_violations == 0


class TestSleepingBehaviour:
    def test_nodes_sleep_most_of_the_time(self):
        graph = ring_graph(64, seed=7)
        result = run_randomized_mst(graph, seed=0)
        assert result.metrics.max_awake < result.metrics.rounds / 20

    def test_messages_never_lost(self):
        """The schedule guarantees every send has an awake receiver."""
        graph = random_connected_graph(20, 0.2, seed=8)
        result = run_randomized_mst(graph, seed=0)
        assert result.metrics.messages_lost == 0
