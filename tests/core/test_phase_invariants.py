"""Mid-execution invariants: after every phase the graph is a valid FLDT
whose tree edges are a sub-forest of the unique MST.

The algorithms expose enough of their final state (fragment, level, parent
port, children ports) to reconstruct each node's LDT record; stopping an
execution after ``k`` phases via ``max_phases`` therefore lets us check the
paper's Section 2.1 invariant — "at the end of each phase ... a forest of
disjoint [Labeled Distance] trees" — on the *real* intermediate states, not
just the final output.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LDTState, check_fldt, run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    mst_weight_set,
    random_connected_graph,
    ring_graph,
)


def reconstruct_states(result):
    states = {}
    for node, output in result.node_outputs.items():
        states[node] = LDTState(
            node_id=node,
            fragment_id=output.fragment_id,
            level=output.level,
            parent_port=output.parent_port,
            children_ports=set(output.children_ports),
        )
    return states


def assert_valid_partial_forest(graph, result):
    states = reconstruct_states(result)
    fragments = check_fldt(graph, states)  # raises on any violation
    tree_weights = set()
    for node, output in result.node_outputs.items():
        tree_weights |= set(output.mst_weights)
    assert tree_weights <= mst_weight_set(graph)
    # Edge count bookkeeping: a forest with f fragments has n - f edges.
    assert len(tree_weights) == graph.n - len(fragments)
    return fragments


class TestRandomizedPhaseInvariants:
    @pytest.mark.parametrize("phases", [1, 2, 3, 5])
    def test_forest_valid_after_k_phases(self, phases):
        graph = random_connected_graph(20, 0.2, seed=3)
        result = run_randomized_mst(graph, seed=1, max_phases=phases)
        assert_valid_partial_forest(graph, result)

    def test_fragment_count_monotone(self):
        graph = random_connected_graph(24, 0.15, seed=4)
        counts = []
        for phases in (1, 2, 3, 4):
            result = run_randomized_mst(graph, seed=2, max_phases=phases)
            fragments = assert_valid_partial_forest(graph, result)
            counts.append(len(fragments))
        assert counts == sorted(counts, reverse=True)

    @given(
        phases=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**4),
    )
    def test_forest_invariant_random(self, phases, seed):
        graph = random_connected_graph(12, 0.3, seed=seed)
        result = run_randomized_mst(graph, seed=seed, max_phases=phases)
        assert_valid_partial_forest(graph, result)


class TestDeterministicPhaseInvariants:
    @pytest.mark.parametrize("phases", [1, 2, 3])
    def test_forest_valid_after_k_phases(self, phases):
        graph = random_connected_graph(14, 0.2, seed=5)
        result = run_deterministic_mst(graph, max_phases=phases)
        assert_valid_partial_forest(graph, result)

    def test_every_phase_merges_something(self):
        """With >= 2 fragments, at least one Blue fragment disappears."""
        graph = ring_graph(12, seed=6)
        previous = graph.n
        for phases in (1, 2, 3):
            result = run_deterministic_mst(graph, max_phases=phases)
            fragments = assert_valid_partial_forest(graph, result)
            assert len(fragments) < previous
            previous = len(fragments)
            if previous == 1:
                break

    @given(seed=st.integers(min_value=0, max_value=10**4))
    def test_first_phase_invariant_random(self, seed):
        graph = random_connected_graph(10, 0.3, seed=seed)
        result = run_deterministic_mst(graph, max_phases=1)
        assert_valid_partial_forest(graph, result)


class TestLogStarPhaseInvariants:
    @pytest.mark.parametrize("phases", [1, 2])
    def test_forest_valid_after_k_phases(self, phases):
        graph = random_connected_graph(12, 0.25, seed=8)
        result = run_deterministic_mst(
            graph, max_phases=phases, coloring="log-star"
        )
        assert_valid_partial_forest(graph, result)

    def test_both_colorings_make_progress(self):
        graph = ring_graph(14, seed=9)
        for coloring in ("fast-awake", "log-star"):
            result = run_deterministic_mst(
                graph, max_phases=1, coloring=coloring
            )
            fragments = assert_valid_partial_forest(graph, result)
            assert len(fragments) < graph.n
