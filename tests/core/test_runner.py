"""The high-level runner API: validation, options, result helpers."""

from __future__ import annotations

import pytest

from repro.core import MSTRunResult, run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    WeightedGraph,
    mst_weight_set,
    random_connected_graph,
    ring_graph,
)


class TestInputValidation:
    def test_disconnected_rejected(self):
        graph = WeightedGraph([1, 2, 3, 4], [(1, 2, 1), (3, 4, 2)])
        with pytest.raises(ValueError, match="connected"):
            run_randomized_mst(graph)

    def test_verify_passes_on_good_run(self):
        graph = ring_graph(10, seed=1)
        result = run_randomized_mst(graph, seed=0, verify=True)
        assert result.is_correct_mst(graph)

    def test_verify_fails_on_truncated_run(self):
        """A one-phase run cannot span the graph; verify must catch it."""
        graph = ring_graph(16, seed=2)
        with pytest.raises(AssertionError, match="wrong edge set"):
            run_randomized_mst(graph, seed=0, max_phases=1, verify=True)


class TestSimKwargsPassthrough:
    def test_trace_enabled(self):
        graph = ring_graph(8, seed=3)
        result = run_randomized_mst(graph, seed=0, trace=True)
        assert result.simulation.trace is not None
        assert len(result.simulation.trace) > 0

    def test_knowledge_enabled(self):
        graph = ring_graph(8, seed=4)
        result = run_randomized_mst(graph, seed=0, track_knowledge=True)
        assert result.simulation.knowledge is not None

    def test_congest_factor_override(self):
        graph = ring_graph(8, seed=5)
        result = run_randomized_mst(graph, seed=0, congest_factor=64)
        assert result.metrics.congest_violations == 0


class TestResultShape:
    def test_fields(self):
        graph = random_connected_graph(10, 0.3, seed=6)
        result = run_randomized_mst(graph, seed=0)
        assert isinstance(result, MSTRunResult)
        assert result.algorithm == "Randomized-MST"
        assert result.max_awake == result.metrics.max_awake
        assert result.rounds == result.metrics.rounds
        assert set(result.node_outputs) == set(graph.node_ids)

    def test_deterministic_label(self):
        graph = ring_graph(6, seed=7)
        assert run_deterministic_mst(graph).algorithm == "Deterministic-MST"

    def test_mst_weights_union_of_node_outputs(self):
        graph = random_connected_graph(12, 0.25, seed=8)
        result = run_randomized_mst(graph, seed=1)
        union = set()
        for output in result.node_outputs.values():
            union |= set(output.mst_weights)
        assert union == result.mst_weights == mst_weight_set(graph)

    def test_phases_positive(self):
        graph = ring_graph(6, seed=9)
        assert run_randomized_mst(graph, seed=0).phases >= 1
