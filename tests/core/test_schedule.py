"""Transmission-Schedule offsets, blocks, and alignment invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Block,
    BlockClock,
    block_span,
    down_receive_offset,
    down_send_offset,
    side_offset,
    up_receive_offset,
    up_send_offset,
)


class TestOffsets:
    def test_paper_values_for_nonroot(self):
        """The exact offsets of Appendix B for a node at distance i."""
        n, i = 10, 4
        assert down_receive_offset(i) == i
        assert down_send_offset(i) == i + 1
        assert side_offset(n) == n + 1
        assert up_receive_offset(n, i) == 2 * n - i + 1
        assert up_send_offset(n, i) == 2 * n - i + 2

    def test_paper_values_for_root(self):
        """Root: Down-Send 1, Side n+1, Up-Receive 2n+1 — the level-0 case."""
        n = 10
        assert down_send_offset(0) == 1
        assert up_receive_offset(n, 0) == 2 * n + 1

    def test_root_has_no_receive_from_parent(self):
        with pytest.raises(ValueError):
            down_receive_offset(0)
        with pytest.raises(ValueError):
            up_send_offset(5, 0)

    @given(
        n=st.integers(min_value=2, max_value=200),
        level=st.integers(min_value=1, max_value=199),
    )
    def test_parent_child_alignment(self, n, level):
        """The chaining property: information moves one hop per round."""
        if level > n - 1:
            level = n - 1
        # Child's Down-Receive equals parent's Down-Send.
        assert down_receive_offset(level) == down_send_offset(level - 1)
        # Parent's Up-Receive equals child's Up-Send.
        assert up_receive_offset(n, level - 1) == up_send_offset(n, level)

    @given(
        n=st.integers(min_value=2, max_value=200),
        level=st.integers(min_value=1, max_value=199),
    )
    def test_offsets_strictly_ordered_within_block(self, n, level):
        """Down < Side < Up for every node — procedures never collide."""
        if level > n - 1:
            level = n - 1
        assert (
            down_receive_offset(level)
            < down_send_offset(level)
            <= side_offset(n)
            <= up_receive_offset(n, level)
            < up_send_offset(n, level)
            <= block_span(n) - 1
        )

    def test_side_round_is_network_global(self):
        """Every node, any level, shares the same Side offset."""
        n = 17
        assert side_offset(n) == n + 1  # independent of level by definition


class TestBlock:
    def test_absolute_rounds(self):
        block = Block(start=100, n=5)
        assert block.down_send(0) == 100
        assert block.side() == 105
        assert block.up_receive(0) == 110
        assert block.end == 111

    def test_rejects_out_of_block_offsets(self):
        block = Block(start=1, n=3)
        with pytest.raises(ValueError):
            block.down_receive(10)


class TestBlockClock:
    def test_consecutive_blocks_abut(self):
        clock = BlockClock(n=4)
        first, second = clock.take(), clock.take()
        assert second.start == first.end + 1

    def test_skip_advances_without_allocating(self):
        reference = BlockClock(n=4)
        for _ in range(3):
            reference.take()
        skipping = BlockClock(n=4)
        skipping.skip(3)
        assert skipping.take().start == reference.take().start

    def test_identical_clocks_align(self):
        """Two nodes constructing the same clock take the same blocks —
        the alignment property Transmit-Adjacent relies on."""
        a, b = BlockClock(n=9), BlockClock(n=9)
        for _ in range(5):
            assert a.take().start == b.take().start

    def test_rejects_bad_start(self):
        with pytest.raises(ValueError):
            BlockClock(n=4, start=0)

    def test_rejects_negative_skip(self):
        with pytest.raises(ValueError):
            BlockClock(n=4).skip(-1)

    def test_block_span_too_small_n(self):
        with pytest.raises(ValueError):
            block_span(0)
