"""Golden tests: traced wake rounds equal the paper's exact formulas.

These pin the implementation to Appendix B's arithmetic — if a refactor
shifts any offset by one, these fail before any higher-level symptom shows.
"""

from __future__ import annotations

from repro.core import NOTHING, block_span
from repro.core.harness import FLDTPlan, run_procedure
from repro.core.toolbox import fragment_broadcast, transmit_adjacent, upcast_min
from repro.graphs import path_graph


def traced_run(procedure, n=6):
    graph = path_graph(n, seed=1)
    plan = FLDTPlan.single_tree(graph, graph.node_ids[0])
    run = run_procedure(
        graph, plan, procedure, refresh_neighbors=False, trace=True
    )
    states = plan.build_states(graph)
    return graph, states, run


class TestBroadcastGolden:
    def test_wake_rounds_match_down_offsets(self):
        """Broadcast block starting at round 1: a node at level i wakes at
        absolute rounds {i, i+1} (Down-Receive, Down-Send), the root at 1,
        the deepest leaf only at its Down-Receive."""

        def procedure(ctx, ldt, clock, value):
            result = yield from fragment_broadcast(
                ctx, ldt, clock.take(), 42 if ldt.is_root else NOTHING
            )
            return result

        graph, states, run = traced_run(procedure)
        deepest = max(state.level for state in states.values())
        for node, state in states.items():
            wakes = run.simulation.trace.wake_rounds(node)
            if state.level == 0:
                assert wakes == [1]
            elif state.level == deepest:
                assert wakes == [state.level]
            else:
                assert wakes == [state.level, state.level + 1]


class TestUpcastGolden:
    def test_wake_rounds_match_up_offsets(self):
        """Upcast block starting at round 1 over a path of depth n-1:
        a node at level i wakes at {2n-i+1, 2n-i+2} (Up-Receive, Up-Send),
        the root only at 2n+1, the deepest leaf only at its Up-Send."""

        def procedure(ctx, ldt, clock, value):
            result = yield from upcast_min(ctx, ldt, clock.take(), ctx.node_id)
            return result

        graph, states, run = traced_run(procedure)
        n = graph.n
        deepest = max(state.level for state in states.values())
        for node, state in states.items():
            wakes = run.simulation.trace.wake_rounds(node)
            level = state.level
            if level == 0:
                assert wakes == [2 * n + 1]
            elif level == deepest:
                assert wakes == [2 * n - level + 2]
            else:
                assert wakes == [2 * n - level + 1, 2 * n - level + 2]


class TestSideGolden:
    def test_everyone_meets_at_n_plus_1(self):
        def procedure(ctx, ldt, clock, value):
            inbox = yield from transmit_adjacent(
                ctx, ldt, clock.take(), ctx.broadcast(1)
            )
            return len(inbox)

        graph, states, run = traced_run(procedure)
        n = graph.n
        for node in graph.node_ids:
            assert run.simulation.trace.wake_rounds(node) == [n + 1]


class TestBlockChaining:
    def test_second_block_offsets_shift_by_span(self):
        """Two broadcasts back to back: the second block's wakes are the
        first block's shifted by exactly 2n + 2."""

        def procedure(ctx, ldt, clock, value):
            first = yield from fragment_broadcast(
                ctx, ldt, clock.take(), 1 if ldt.is_root else NOTHING
            )
            second = yield from fragment_broadcast(
                ctx, ldt, clock.take(), 2 if ldt.is_root else NOTHING
            )
            return (first, second)

        graph, states, run = traced_run(procedure)
        span = block_span(graph.n)
        for node in graph.node_ids:
            wakes = run.simulation.trace.wake_rounds(node)
            half = len(wakes) // 2
            first_block, second_block = wakes[:half], wakes[half:]
            assert [w + span for w in first_block] == second_block
        assert all(value == (1, 2) for value in run.returns.values())
