"""Toolbox procedures: correctness and the O(1)-awake / O(n)-round claims.

Each procedure is run standalone on prebuilt forests via the harness; the
paper's Observations 2-4 are asserted literally: values arrive where they
should, every node wakes only a small constant number of times per block,
and one procedure consumes exactly one block of 2n + 2 rounds.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import NOTHING, block_span, min_merge
from repro.core.harness import FLDTPlan, run_procedure
from repro.core.toolbox import (
    fragment_broadcast,
    local_moe,
    neighbor_refresh,
    transmit_adjacent,
    upcast_aggregate,
    upcast_min,
)
from repro.graphs import (
    path_graph,
    random_connected_graph,
    random_tree,
    ring_graph,
    star_graph,
)

#: Upper bound on awake rounds any node may spend in ONE toolbox block
#: (Down-Receive + Down-Send or Up-Receive + Up-Send, at most 2).
MAX_AWAKE_PER_BLOCK = 2


def broadcast_proc(payload):
    def procedure(ctx, ldt, clock, value):
        result = yield from fragment_broadcast(
            ctx, ldt, clock.take(), payload if ldt.is_root else NOTHING
        )
        return result

    return procedure


def upcast_proc(ctx, ldt, clock, value):
    result = yield from upcast_min(ctx, ldt, clock.take(), value)
    return result


class TestFragmentBroadcast:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(9, seed=1),
            lambda: star_graph(8, seed=2),
            lambda: random_tree(14, seed=3),
        ],
    )
    def test_every_node_receives(self, graph_factory):
        graph = graph_factory()
        root = graph.node_ids[0]
        plan = FLDTPlan.single_tree(graph, root)
        run = run_procedure(
            graph, plan, broadcast_proc(("hello", 42)), refresh_neighbors=False
        )
        assert all(value == ("hello", 42) for value in run.returns.values())

    def test_observation2_awake_and_rounds(self):
        """Observation 2: O(1) awake, O(n) running time."""
        graph = path_graph(12, seed=1)
        plan = FLDTPlan.single_tree(graph, graph.node_ids[0])
        run = run_procedure(
            graph, plan, broadcast_proc(7), refresh_neighbors=False
        )
        assert run.simulation.metrics.max_awake <= MAX_AWAKE_PER_BLOCK
        assert run.simulation.metrics.rounds <= block_span(graph.n)

    def test_parallel_fragments_do_not_interfere(self):
        """Two fragments broadcasting in the same block stay separate."""
        graph = path_graph(8, seed=4)
        ids = graph.node_ids
        # Split the path into two halves, each a chain fragment.
        parents = {ids[0]: None, ids[4]: None}
        for i in (1, 2, 3):
            parents[ids[i]] = ids[i - 1]
        for i in (5, 6, 7):
            parents[ids[i]] = ids[i - 1]
        plan = FLDTPlan(parents)

        def procedure(ctx, ldt, clock, value):
            result = yield from fragment_broadcast(
                ctx, ldt, clock.take(),
                ("from", ctx.node_id) if ldt.is_root else NOTHING,
            )
            return result

        run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
        for node, received in run.returns.items():
            expected_root = ids[0] if node in ids[:4] else ids[4]
            assert received == ("from", expected_root)

    def test_singleton_root_keeps_own_payload(self):
        graph = path_graph(2, seed=1)
        plan = FLDTPlan.singletons(graph)
        run = run_procedure(
            graph, plan,
            lambda ctx, ldt, clock, value: fragment_broadcast(
                ctx, ldt, clock.take(), ctx.node_id
            ),
            refresh_neighbors=False,
        )
        assert run.returns == {1: 1, 2: 2}


class TestUpcastMin:
    def test_root_gets_global_min(self):
        graph = random_tree(15, seed=5)
        root = graph.node_ids[0]
        plan = FLDTPlan.single_tree(graph, root)
        inputs = {node: node * 10 for node in graph.node_ids}
        run = run_procedure(
            graph, plan, upcast_proc, inputs=inputs, refresh_neighbors=False
        )
        assert run.returns[root] == min(inputs.values())

    def test_each_node_gets_subtree_min(self):
        graph = path_graph(6, seed=6)
        ids = graph.node_ids
        plan = FLDTPlan.single_tree(graph, ids[0])
        states = plan.build_states(graph)
        inputs = {node: 100 - states[node].level for node in ids}  # min at the deep end
        run = run_procedure(
            graph, plan, upcast_proc, inputs=inputs, refresh_neighbors=False
        )
        deepest_value = min(inputs.values())
        for node in ids:
            assert run.returns[node] == deepest_value if states[node].level == 0 else True
            # Every node's result is the min over its own subtree:
            subtree_min = min(
                inputs[other]
                for other in ids
                if states[other].level >= states[node].level
                and _on_path(states, graph, other, node)
            )
            assert run.returns[node] == subtree_min

    def test_nothing_values_are_ignored(self):
        graph = star_graph(6, seed=7)
        hub = next(n for n in graph.node_ids if graph.degree(n) == 5)
        plan = FLDTPlan.single_tree(graph, hub)
        leaf = next(n for n in graph.node_ids if n != hub)
        inputs = {node: NOTHING for node in graph.node_ids}
        inputs[leaf] = 42
        run = run_procedure(
            graph, plan, upcast_proc, inputs=inputs, refresh_neighbors=False
        )
        assert run.returns[hub] == 42

    def test_all_nothing_yields_nothing(self):
        graph = path_graph(4, seed=8)
        plan = FLDTPlan.single_tree(graph, graph.node_ids[0])
        run = run_procedure(graph, plan, upcast_proc, refresh_neighbors=False)
        assert run.returns[graph.node_ids[0]] is NOTHING

    def test_observation3_awake_bound(self):
        graph = path_graph(16, seed=9)
        plan = FLDTPlan.single_tree(graph, graph.node_ids[0])
        inputs = {node: node for node in graph.node_ids}
        run = run_procedure(
            graph, plan, upcast_proc, inputs=inputs, refresh_neighbors=False
        )
        assert run.simulation.metrics.max_awake <= MAX_AWAKE_PER_BLOCK
        assert run.simulation.metrics.rounds <= block_span(graph.n)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_min_matches_oracle_on_random_trees(self, seed):
        graph = random_tree(10, seed=seed)
        root = graph.node_ids[0]
        plan = FLDTPlan.single_tree(graph, root)
        inputs = {node: (node * 7919) % 97 for node in graph.node_ids}
        run = run_procedure(
            graph, plan, upcast_proc, inputs=inputs, refresh_neighbors=False
        )
        assert run.returns[root] == min(inputs.values())


class TestUpcastAggregate:
    def test_sum_aggregation(self):
        graph = random_tree(11, seed=10)
        root = graph.node_ids[0]
        plan = FLDTPlan.single_tree(graph, root)

        def proc(ctx, ldt, clock, value):
            result = yield from upcast_aggregate(
                ctx, ldt, clock.take(), 1, lambda a, b: a + b
            )
            return result

        run = run_procedure(graph, plan, proc, refresh_neighbors=False)
        assert run.returns[root] == graph.n


class TestTransmitAdjacent:
    def test_messages_cross_fragment_boundaries(self):
        graph = ring_graph(6, seed=11)
        plan = FLDTPlan.singletons(graph)

        def proc(ctx, ldt, clock, value):
            inbox = yield from transmit_adjacent(
                ctx, ldt, clock.take(), ctx.broadcast(ctx.node_id)
            )
            return sorted(inbox.values())

        run = run_procedure(graph, plan, proc, refresh_neighbors=False)
        for node in graph.node_ids:
            assert run.returns[node] == sorted(graph.neighbors(node))

    def test_observation4_single_awake_round(self):
        graph = ring_graph(10, seed=12)
        plan = FLDTPlan.singletons(graph)

        def proc(ctx, ldt, clock, value):
            inbox = yield from transmit_adjacent(ctx, ldt, clock.take())
            return len(inbox)

        run = run_procedure(graph, plan, proc, refresh_neighbors=False)
        assert run.simulation.metrics.max_awake == 1

    def test_alignment_across_different_depth_fragments(self):
        """Nodes of different fragments at different levels still meet in
        the shared Side round — the block-alignment property."""
        graph = path_graph(7, seed=13)
        ids = graph.node_ids
        # Fragment A: chain of 4; fragment B: chain of 3.
        parents = {ids[0]: None, ids[4]: None}
        for i in (1, 2, 3):
            parents[ids[i]] = ids[i - 1]
        for i in (5, 6):
            parents[ids[i]] = ids[i - 1]
        plan = FLDTPlan(parents)

        def proc(ctx, ldt, clock, value):
            inbox = yield from transmit_adjacent(
                ctx, ldt, clock.take(), ctx.broadcast((ldt.fragment_id, ldt.level))
            )
            return dict(inbox)

        run = run_procedure(graph, plan, proc, refresh_neighbors=False)
        # The boundary nodes ids[3] (level 3 in A) and ids[4] (level 0 in B)
        # heard each other despite unequal levels.
        a_side = run.returns[ids[3]]
        b_side = run.returns[ids[4]]
        assert (ids[4], 0) in a_side.values()
        assert (ids[0], 3) in b_side.values()


class TestNeighborRefreshAndLocalMoe:
    def test_cache_updated(self):
        graph = ring_graph(5, seed=14)
        plan = FLDTPlan.singletons(graph)

        def proc(ctx, ldt, clock, value):
            yield from neighbor_refresh(ctx, ldt, clock.take())
            return dict(ldt.neighbor_fragment)

        run = run_procedure(graph, plan, proc, refresh_neighbors=False)
        for node in graph.node_ids:
            cached = run.returns[node]
            assert sorted(cached.values()) == sorted(graph.neighbors(node))

    def test_local_moe_picks_lightest_outgoing(self):
        graph = ring_graph(5, seed=15)
        plan = FLDTPlan.singletons(graph)

        def proc(ctx, ldt, clock, value):
            yield from neighbor_refresh(ctx, ldt, clock.take())
            return local_moe(ctx, ldt)

        run = run_procedure(graph, plan, proc, refresh_neighbors=False)
        for node in graph.node_ids:
            weight, port = run.returns[node]
            assert weight == min(
                w for (_, _, w) in graph.ports_of(node).values()
            )

    def test_local_moe_ignores_same_fragment(self):
        graph = path_graph(3, seed=16)
        ids = graph.node_ids
        plan = FLDTPlan({ids[0]: None, ids[1]: ids[0], ids[2]: None})

        def proc(ctx, ldt, clock, value):
            yield from neighbor_refresh(ctx, ldt, clock.take())
            return local_moe(ctx, ldt)

        run = run_procedure(graph, plan, proc, refresh_neighbors=False)
        # Middle node's only outgoing edge goes to ids[2]'s fragment.
        middle = run.returns[ids[1]]
        assert middle is not NOTHING
        assert middle[0] == graph.weight(ids[1], ids[2])

    def test_local_moe_without_refresh_raises(self):
        graph = path_graph(2, seed=17)
        plan = FLDTPlan.singletons(graph)

        def proc(ctx, ldt, clock, value):
            return local_moe(ctx, ldt)
            yield  # pragma: no cover

        with pytest.raises(Exception, match="neighbor_refresh"):
            run_procedure(graph, plan, proc, refresh_neighbors=False)


class TestMinMerge:
    def test_handles_nothing(self):
        assert min_merge(NOTHING, 5) == 5
        assert min_merge(5, NOTHING) == 5
        assert min_merge(NOTHING, NOTHING) is NOTHING

    def test_takes_minimum(self):
        assert min_merge(3, 7) == 3
        assert min_merge((2, 9), (2, 4)) == (2, 4)


def _on_path(states, graph, descendant, ancestor):
    """True iff ``ancestor`` lies on ``descendant``'s path to the root."""
    node = descendant
    while True:
        if node == ancestor:
            return True
        state = states[node]
        if state.parent_port is None:
            return False
        node = graph.ports_of(node)[state.parent_port][0]


class TestNeighborAwareness:
    def test_whole_fragment_learns_cross_fragment_news(self):
        """Two chain fragments: one announces a value over the boundary
        edge; every member of the other fragment ends up knowing it."""
        from repro.core.toolbox import neighbor_awareness
        from repro.core.schedule import BlockClock

        graph = path_graph(6, seed=21)
        ids = graph.node_ids
        parents = {ids[0]: None, ids[3]: None}
        for i in (1, 2):
            parents[ids[i]] = ids[i - 1]
        for i in (4, 5):
            parents[ids[i]] = ids[i - 1]
        plan = FLDTPlan(parents)
        boundary_sender = ids[2]
        boundary_port = next(
            port
            for port, (neighbour, _, _) in graph.ports_of(boundary_sender).items()
            if neighbour == ids[3]
        )

        def procedure(ctx, ldt, clock, value):
            sends = {}
            if ctx.node_id == boundary_sender:
                sends = {boundary_port: 77}
            result = yield from neighbor_awareness(ctx, ldt, clock, sends)
            return result

        run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
        for node in (ids[3], ids[4], ids[5]):
            assert run.returns[node] == 77
        # The announcing fragment heard nothing.
        for node in (ids[0], ids[1], ids[2]):
            assert run.returns[node] is NOTHING

    def test_consumes_exactly_three_blocks(self):
        from repro.core.toolbox import neighbor_awareness
        from repro.core import block_span

        graph = path_graph(4, seed=22)
        plan = FLDTPlan.singletons(graph)

        def procedure(ctx, ldt, clock, value):
            result = yield from neighbor_awareness(
                ctx, ldt, clock, ctx.broadcast(ctx.node_id)
            )
            return (result, clock.next_start)

        run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
        for node, (result, next_start) in run.returns.items():
            assert next_start == 1 + 3 * block_span(graph.n)
            # Singleton fragments: the aggregate is the min neighbour ID.
            assert result == min(graph.neighbors(node))
