"""Generator contracts: connectivity, distinct weights, ID ranges, shapes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import (
    adversarial_moe_chain,
    caterpillar_graph,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    random_tree,
    ring_graph,
    star_graph,
)

ALL_GENERATORS = [
    ("path", lambda n, seed: path_graph(n, seed)),
    ("ring", lambda n, seed: ring_graph(max(3, n), seed)),
    ("star", lambda n, seed: star_graph(n, seed)),
    ("complete", lambda n, seed: complete_graph(n, seed)),
    ("tree", lambda n, seed: random_tree(n, seed)),
    ("gnp", lambda n, seed: random_connected_graph(n, 0.2, seed)),
    ("geo", lambda n, seed: random_geometric_graph(n, 0.3, seed)),
    ("chain", lambda n, seed: adversarial_moe_chain(n, seed)),
]


@pytest.mark.parametrize("name,factory", ALL_GENERATORS)
class TestGeneratorContracts:
    def test_connected(self, name, factory):
        assert factory(12, 3).is_connected()

    def test_distinct_weights(self, name, factory):
        graph = factory(12, 3)
        weights = [edge.weight for edge in graph.edges()]
        assert len(weights) == len(set(weights))

    def test_deterministic_given_seed(self, name, factory):
        first, second = factory(10, 7), factory(10, 7)
        assert [e.endpoints + (e.weight,) for e in first.edges()] == [
            e.endpoints + (e.weight,) for e in second.edges()
        ]

    def test_seed_changes_weights(self, name, factory):
        if name == "chain":
            pytest.skip("the adversarial chain's weights are positional by design")
        first, second = factory(10, 1), factory(10, 2)
        assert {e.weight for e in first.edges()} != {
            e.weight for e in second.edges()
        }


class TestShapes:
    def test_path_edge_count(self):
        assert path_graph(9).m == 8

    def test_ring_edge_count(self):
        assert ring_graph(9).m == 9

    def test_star_has_hub(self):
        graph = star_graph(8)
        degrees = sorted(graph.degree(node) for node in graph.node_ids)
        assert degrees == [1] * 7 + [7]

    def test_complete_edge_count(self):
        assert complete_graph(6).m == 15

    def test_grid_shape(self):
        graph = grid_graph(3, 4)
        assert graph.n == 12
        assert graph.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_tree_edge_count(self):
        assert random_tree(15).m == 14

    def test_caterpillar_counts(self):
        graph = caterpillar_graph(5, legs_per_node=2)
        assert graph.n == 5 + 10
        assert graph.m == 4 + 10

    def test_adversarial_chain_weights_increase(self):
        graph = adversarial_moe_chain(8, seed=1)
        weights = sorted(edge.weight for edge in graph.edges())
        assert weights == list(range(1, 8))

    def test_gnp_extra_edges_increase_density(self):
        sparse = random_connected_graph(20, 0.0, seed=1)
        dense = random_connected_graph(20, 0.5, seed=1)
        assert sparse.m == 19
        assert dense.m > sparse.m


class TestIdRanges:
    def test_default_ids_contiguous(self):
        graph = ring_graph(6, seed=0)
        assert graph.node_ids == [1, 2, 3, 4, 5, 6]
        assert graph.max_id == 6

    def test_id_range_draws_sparse_ids(self):
        graph = ring_graph(6, seed=0, id_range=1000)
        assert graph.max_id == 1000
        assert all(1 <= node <= 1000 for node in graph.node_ids)
        assert len(set(graph.node_ids)) == 6

    def test_id_range_below_n_rejected(self):
        with pytest.raises(ValueError):
            ring_graph(6, id_range=4)

    def test_topology_independent_of_id_draw(self):
        """Same seed, different ID ranges: same weight multiset."""
        small = ring_graph(6, seed=5)
        large = ring_graph(6, seed=5, id_range=500)
        assert {e.weight for e in small.edges()} == {e.weight for e in large.edges()}


class TestValidation:
    @pytest.mark.parametrize(
        "call",
        [
            lambda: path_graph(0),
            lambda: ring_graph(2),
            lambda: star_graph(1),
            lambda: complete_graph(1),
            lambda: grid_graph(0, 5),
            lambda: grid_graph(1, 1),
            lambda: caterpillar_graph(1),
            lambda: random_connected_graph(1),
            lambda: random_connected_graph(5, extra_edge_prob=1.5),
            lambda: random_geometric_graph(1),
            lambda: adversarial_moe_chain(1),
            lambda: random_tree(0),
        ],
    )
    def test_bad_parameters_rejected(self, call):
        with pytest.raises(ValueError):
            call()


@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
    prob=st.floats(min_value=0.0, max_value=1.0),
)
def test_random_connected_graph_always_valid(n, seed, prob):
    graph = random_connected_graph(n, extra_edge_prob=prob, seed=seed)
    assert graph.is_connected()
    assert graph.n == n
    weights = [edge.weight for edge in graph.edges()]
    assert len(weights) == len(set(weights))


@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_random_geometric_graph_always_connected(n, seed):
    graph = random_geometric_graph(n, radius=0.2, seed=seed)
    assert graph.is_connected()
    assert graph.n == n
