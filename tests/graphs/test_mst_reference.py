"""Reference MST oracles agree with each other and with basic facts."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import (
    UnionFind,
    WeightedGraph,
    boruvka_mst,
    complete_graph,
    is_spanning_tree,
    kruskal_mst,
    mst_weight_set,
    prim_mst,
    random_connected_graph,
    ring_graph,
    verify_mst,
)


class TestUnionFind:
    def test_union_reduces_components(self):
        union_find = UnionFind([1, 2, 3])
        assert union_find.components == 3
        assert union_find.union(1, 2)
        assert union_find.components == 2
        assert not union_find.union(2, 1)

    def test_same(self):
        union_find = UnionFind([1, 2, 3])
        union_find.union(1, 3)
        assert union_find.same(1, 3)
        assert not union_find.same(1, 2)

    def test_path_compression_keeps_roots_consistent(self):
        union_find = UnionFind(range(10))
        for i in range(9):
            union_find.union(i, i + 1)
        roots = {union_find.find(i) for i in range(10)}
        assert len(roots) == 1


class TestOracleAgreement:
    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=10**6),
        prob=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_kruskal_prim_boruvka_agree(self, n, seed, prob):
        graph = random_connected_graph(n, extra_edge_prob=prob, seed=seed)
        kruskal = {e.weight for e in kruskal_mst(graph)}
        prim = {e.weight for e in prim_mst(graph)}
        boruvka = {e.weight for e in boruvka_mst(graph)}
        assert kruskal == prim == boruvka
        assert len(kruskal) == n - 1

    def test_ring_mst_omits_heaviest(self):
        graph = ring_graph(12, seed=4)
        heaviest = max(edge.weight for edge in graph.edges())
        assert heaviest not in mst_weight_set(graph)
        assert len(mst_weight_set(graph)) == 11

    def test_single_node(self):
        graph = WeightedGraph([1], [])
        assert kruskal_mst(graph) == []
        assert prim_mst(graph) == []
        assert boruvka_mst(graph) == []

    def test_disconnected_raises(self):
        graph = WeightedGraph([1, 2, 3, 4], [(1, 2, 1), (3, 4, 2)])
        for oracle in (kruskal_mst, prim_mst, boruvka_mst):
            with pytest.raises(ValueError):
                oracle(graph)

    def test_kruskal_returns_sorted(self):
        graph = complete_graph(6, seed=2)
        weights = [edge.weight for edge in kruskal_mst(graph)]
        assert weights == sorted(weights)


class TestVerifiers:
    def test_is_spanning_tree_accepts_mst(self):
        graph = random_connected_graph(10, 0.3, seed=1)
        assert is_spanning_tree(graph, mst_weight_set(graph))

    def test_is_spanning_tree_rejects_wrong_count(self):
        graph = ring_graph(6, seed=1)
        all_weights = {edge.weight for edge in graph.edges()}
        assert not is_spanning_tree(graph, all_weights)  # n edges: a cycle

    def test_is_spanning_tree_rejects_cycle(self):
        graph = complete_graph(4, seed=1)
        # Pick a triangle plus nothing: 3 edges over 4 nodes -> wrong count.
        triangle = [graph.weight(1, 2), graph.weight(2, 3), graph.weight(1, 3)]
        assert not is_spanning_tree(graph, triangle)

    def test_verify_mst_accepts(self):
        graph = random_connected_graph(8, 0.3, seed=6)
        verify_mst(graph, mst_weight_set(graph))

    def test_verify_mst_rejects_swap(self):
        graph = complete_graph(5, seed=3)
        mst = mst_weight_set(graph)
        non_tree = next(
            edge.weight for edge in graph.edges() if edge.weight not in mst
        )
        broken = set(mst)
        broken.remove(max(broken))
        broken.add(non_tree)
        with pytest.raises(AssertionError, match="not the MST"):
            verify_mst(graph, broken)

    def test_mst_is_lightest_spanning_tree_small(self):
        """Exhaustive cross-check on a tiny complete graph."""
        from itertools import combinations

        graph = complete_graph(5, seed=9)
        mst = mst_weight_set(graph)
        mst_total = sum(mst)
        all_weights = [edge.weight for edge in graph.edges()]
        for subset in combinations(all_weights, graph.n - 1):
            if is_spanning_tree(graph, subset):
                assert sum(subset) >= mst_total
