"""Output-convention and structural validation helpers."""

from __future__ import annotations

import pytest

from repro.graphs import (
    DIAGNOSIS_OUTCOMES,
    MSTDiagnosis,
    WeightedGraph,
    check_local_mst_outputs,
    mst_weight_set,
    path_graph,
    require_connected,
    require_sleeping_model_inputs,
    ring_graph,
    tree_depths,
    verify_or_diagnose,
)


def outputs_from_mst(graph):
    """The honest per-node output for the true MST."""
    mst = mst_weight_set(graph)
    return {
        node: {
            weight
            for (_, _, weight) in graph.ports_of(node).values()
            if weight in mst
        }
        for node in graph.node_ids
    }


class TestRequireChecks:
    def test_connected_passes(self):
        require_connected(ring_graph(5))

    def test_disconnected_rejected(self):
        graph = WeightedGraph([1, 2, 3, 4], [(1, 2, 1), (3, 4, 2)])
        with pytest.raises(ValueError, match="connected"):
            require_connected(graph)

    def test_full_input_model(self):
        require_sleeping_model_inputs(ring_graph(6, seed=1))


class TestLocalOutputs:
    def test_accepts_consistent_outputs(self):
        graph = ring_graph(8, seed=2)
        union = check_local_mst_outputs(graph, outputs_from_mst(graph))
        assert union == mst_weight_set(graph)

    def test_rejects_missing_node(self):
        graph = ring_graph(5, seed=1)
        outputs = outputs_from_mst(graph)
        outputs.pop(graph.node_ids[0])
        with pytest.raises(AssertionError, match="missing"):
            check_local_mst_outputs(graph, outputs)

    def test_rejects_non_incident_weight(self):
        graph = path_graph(4, seed=1)
        outputs = outputs_from_mst(graph)
        outputs[graph.node_ids[0]] = set(outputs[graph.node_ids[0]]) | {999}
        with pytest.raises(AssertionError, match="non-incident"):
            check_local_mst_outputs(graph, outputs)

    def test_rejects_endpoint_disagreement(self):
        graph = path_graph(4, seed=1)
        outputs = {node: set(weights) for node, weights in outputs_from_mst(graph).items()}
        edge = graph.edges()[0]
        outputs[edge.u].discard(edge.weight)
        with pytest.raises(AssertionError, match="disagree"):
            check_local_mst_outputs(graph, outputs)


class TestTreeDepths:
    def test_depths_of_chain(self):
        parents = {2: 1, 3: 2, 4: 3}
        assert tree_depths(parents, root=1) == {1: 0, 2: 1, 3: 2, 4: 3}

    def test_depths_of_star(self):
        parents = {2: 1, 3: 1, 4: 1}
        depths = tree_depths(parents, root=1)
        assert depths[1] == 0 and all(depths[i] == 1 for i in (2, 3, 4))

    def test_cycle_detected(self):
        parents = {1: 2, 2: 1}
        with pytest.raises(AssertionError):
            tree_depths(parents, root=3)


class _FakeResult:
    def __init__(self, correct: bool):
        self._correct = correct

    def is_correct_mst(self, graph) -> bool:
        return self._correct


class TestVerifyOrDiagnose:
    """The fault-injection oracle: all four outcomes, plus real runs."""

    def test_correct(self):
        graph = ring_graph(6, seed=1)
        diagnosis = verify_or_diagnose(graph, lambda: _FakeResult(True))
        assert diagnosis.outcome == "correct"
        assert diagnosis.completed
        assert diagnosis.error is None
        assert diagnosis.result is not None

    def test_silent_wrong(self):
        graph = ring_graph(6, seed=1)
        diagnosis = verify_or_diagnose(graph, lambda: _FakeResult(False))
        assert diagnosis.outcome == "silent_wrong"
        assert diagnosis.completed  # terminated cleanly, just wrong

    def test_detected_wrong_from_simulation_error(self):
        from repro.sim.errors import SimulationError

        def boom():
            raise SimulationError("node 3 crashed")

        diagnosis = verify_or_diagnose(ring_graph(6, seed=1), boom)
        assert diagnosis.outcome == "detected_wrong"
        assert not diagnosis.completed
        assert "node 3 crashed" in diagnosis.error
        assert diagnosis.result is None

    def test_detected_wrong_from_output_convention(self):
        def bad_outputs():
            raise AssertionError("nodes missing MST output: [3]")

        diagnosis = verify_or_diagnose(ring_graph(6, seed=1), bad_outputs)
        assert diagnosis.outcome == "detected_wrong"

    def test_hung(self):
        from repro.sim.errors import SimulationLimitExceeded

        def spin():
            raise SimulationLimitExceeded("round 1001 exceeds max_rounds=1000")

        diagnosis = verify_or_diagnose(ring_graph(6, seed=1), spin)
        assert diagnosis.outcome == "hung"
        assert not diagnosis.completed

    def test_unexpected_exceptions_propagate(self):
        def broken():
            raise OSError("disk on fire")

        with pytest.raises(OSError):
            verify_or_diagnose(ring_graph(6, seed=1), broken)

    def test_outcomes_tuple_covers_all(self):
        assert set(DIAGNOSIS_OUTCOMES) == {
            "correct",
            "detected_wrong",
            "silent_wrong",
            "hung",
        }
        assert MSTDiagnosis("correct").completed
        assert not MSTDiagnosis("hung").completed

    def test_real_run_perfect_channel_is_correct(self):
        from repro.core import run_randomized_mst

        graph = ring_graph(8, seed=2)
        diagnosis = verify_or_diagnose(
            graph, lambda: run_randomized_mst(graph, seed=0)
        )
        assert diagnosis.outcome == "correct"
        assert diagnosis.result.is_correct_mst(graph)

    def test_real_run_crash_schedule_is_detected(self):
        from repro.core import run_randomized_mst
        from repro.sim import CrashSchedule

        graph = ring_graph(8, seed=2)
        diagnosis = verify_or_diagnose(
            graph,
            lambda: run_randomized_mst(
                graph, seed=0, channel=CrashSchedule.random(2, 50)
            ),
        )
        assert diagnosis.outcome in ("detected_wrong", "hung")
        assert diagnosis.error


class TestOutputHoles:
    def test_missing_nodes_carried_on_error(self):
        from repro.graphs import MSTOutputError

        graph = ring_graph(5, seed=1)
        outputs = outputs_from_mst(graph)
        victim = graph.node_ids[0]
        outputs.pop(victim)
        with pytest.raises(MSTOutputError) as excinfo:
            check_local_mst_outputs(graph, outputs)
        assert excinfo.value.missing == (victim,)

    def test_diagnosis_surfaces_missing_nodes(self):
        from repro.graphs import MSTOutputError

        def hole():
            raise MSTOutputError("nodes missing MST output: [3]", missing=(3,))

        diagnosis = verify_or_diagnose(ring_graph(6, seed=1), hole)
        assert diagnosis.outcome == "detected_wrong"
        assert diagnosis.missing_nodes == (3,)

    def test_diagnosis_default_fields(self):
        diagnosis = MSTDiagnosis("correct")
        assert diagnosis.missing_nodes == ()
        assert diagnosis.crashed_nodes == ()
        assert diagnosis.first_invariant is None
        assert diagnosis.violations == 0


class TestDiagnosisMonitors:
    def test_monitors_finalized_on_crash_path(self):
        """A run that dies mid-protocol still yields a monitor verdict."""
        from repro.invariants import build_monitor_set
        from repro.sim.errors import SimulationError

        graph = ring_graph(4, seed=1)
        monitors = build_monitor_set("all")
        monitors.attach(graph, sorted(graph.node_ids), seed=0)

        def boom():
            raise SimulationError("node 2 crashed")

        diagnosis = verify_or_diagnose(graph, boom, monitors=monitors)
        assert diagnosis.outcome == "detected_wrong"
        assert diagnosis.violations == 0
        assert diagnosis.first_invariant is None
        # finalize really ran (and is idempotent afterwards).
        assert monitors.finalize() is monitors.report
