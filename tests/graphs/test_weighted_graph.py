"""WeightedGraph model: construction contracts, ports, queries."""

from __future__ import annotations

import pytest

from repro.graphs import Edge, WeightedGraph, path_graph, ring_graph


def triangle():
    return WeightedGraph([1, 2, 3], [(1, 2, 10), (2, 3, 20), (1, 3, 30)])


class TestConstruction:
    def test_rejects_duplicate_weights(self):
        with pytest.raises(ValueError, match="duplicate edge weight"):
            WeightedGraph([1, 2, 3], [(1, 2, 5), (2, 3, 5)])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError, match="duplicate edge"):
            WeightedGraph([1, 2], [(1, 2, 5), (2, 1, 6)])

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self-loop"):
            WeightedGraph([1, 2], [(1, 1, 5)])

    def test_rejects_unknown_endpoint(self):
        with pytest.raises(ValueError, match="unknown node"):
            WeightedGraph([1, 2], [(1, 3, 5)])

    def test_rejects_nonpositive_ids(self):
        with pytest.raises(ValueError):
            WeightedGraph([0, 1], [(0, 1, 5)])

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            WeightedGraph([1, 2], [(1, 2, 0)])

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            WeightedGraph([], [])

    def test_rejects_max_id_below_ids(self):
        with pytest.raises(ValueError):
            WeightedGraph([1, 9], [(1, 9, 3)], max_id=5)

    def test_max_id_defaults_to_largest_id(self):
        graph = WeightedGraph([2, 7], [(2, 7, 1)])
        assert graph.max_id == 7

    def test_explicit_max_id(self):
        graph = WeightedGraph([2, 7], [(2, 7, 1)], max_id=100)
        assert graph.max_id == 100


class TestPorts:
    def test_ports_are_contiguous_per_node(self):
        graph = triangle()
        for node in graph.node_ids:
            assert sorted(graph.ports_of(node)) == list(range(graph.degree(node)))

    def test_port_symmetry(self):
        graph = triangle()
        for node in graph.node_ids:
            for port, (neighbour, reverse_port, weight) in graph.ports_of(node).items():
                back = graph.ports_of(neighbour)[reverse_port]
                assert back == (node, port, weight)

    def test_weights_visible_on_both_sides(self):
        graph = triangle()
        assert graph.weight(1, 2) == graph.weight(2, 1) == 10


class TestQueries:
    def test_counts(self):
        graph = triangle()
        assert (graph.n, graph.m) == (3, 3)

    def test_edge_by_weight(self):
        graph = triangle()
        assert graph.edge_by_weight(20).endpoints == (2, 3)

    def test_neighbors(self):
        graph = triangle()
        assert sorted(graph.neighbors(1)) == [2, 3]

    def test_total_weight(self):
        assert triangle().total_weight() == 60

    def test_has_edge(self):
        graph = triangle()
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)

    def test_weight_missing_edge_raises(self):
        graph = WeightedGraph([1, 2, 3], [(1, 2, 5), (2, 3, 6)])
        with pytest.raises(KeyError):
            graph.weight(1, 3)

    def test_contains_and_iter(self):
        graph = triangle()
        assert 1 in graph and 99 not in graph
        assert sorted(graph) == [1, 2, 3]


class TestStructure:
    def test_connectivity(self):
        assert triangle().is_connected()
        disconnected = WeightedGraph([1, 2, 3, 4], [(1, 2, 5), (3, 4, 6)])
        assert not disconnected.is_connected()

    def test_bfs_distances_on_path(self):
        graph = path_graph(5)
        first = graph.node_ids[0]
        distances = graph.bfs_distances(first)
        assert sorted(distances.values()) == [0, 1, 2, 3, 4]

    def test_diameter_ring(self):
        assert ring_graph(10).diameter() == 5

    def test_diameter_disconnected_raises(self):
        disconnected = WeightedGraph([1, 2, 3, 4], [(1, 2, 5), (3, 4, 6)])
        with pytest.raises(ValueError):
            disconnected.diameter()

    def test_subgraph_by_weights(self):
        graph = triangle()
        sub = graph.subgraph_weights({10, 20})
        assert sub.m == 2 and sub.n == 3
        assert not sub.has_edge(1, 3)


class TestEdge:
    def test_normalises_endpoints(self):
        edge = Edge.make(5, 2, 7)
        assert (edge.u, edge.v) == (2, 5)

    def test_other_endpoint(self):
        edge = Edge.make(2, 5, 7)
        assert edge.other(2) == 5
        assert edge.other(5) == 2
        with pytest.raises(ValueError):
            edge.other(9)

    def test_ordering_by_weight(self):
        light, heavy = Edge.make(1, 2, 3), Edge.make(3, 4, 9)
        assert light < heavy
