"""All four MST implementations compute the same unique tree.

With distinct weights the MST is unique, so every correct implementation —
randomized sleeping, deterministic sleeping (both colourings), classical
pipelined GHS, and the three sequential oracles — must agree edge-for-edge
on every input.  Hypothesis sweeps random graphs and seeds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import run_pipelined_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    boruvka_mst,
    kruskal_mst,
    prim_mst,
    random_connected_graph,
)


@given(
    n=st.integers(min_value=2, max_value=14),
    seed=st.integers(min_value=0, max_value=10**4),
    prob=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=15)
def test_all_implementations_agree(n, seed, prob):
    graph = random_connected_graph(n, extra_edge_prob=prob, seed=seed)
    oracles = {
        frozenset(e.weight for e in kruskal_mst(graph)),
        frozenset(e.weight for e in prim_mst(graph)),
        frozenset(e.weight for e in boruvka_mst(graph)),
    }
    assert len(oracles) == 1
    reference = next(iter(oracles))

    distributed = [
        run_randomized_mst(graph, seed=seed),
        run_deterministic_mst(graph),
        run_deterministic_mst(graph, coloring="log-star"),
        run_pipelined_ghs(graph),
    ]
    for result in distributed:
        assert frozenset(result.mst_weights) == reference, result.algorithm


@given(seed=st.integers(min_value=0, max_value=10**4))
@settings(max_examples=10)
def test_randomized_is_seed_independent_in_output(seed):
    """Different coins, same (unique) MST."""
    graph = random_connected_graph(12, 0.3, seed=7)
    first = run_randomized_mst(graph, seed=seed)
    second = run_randomized_mst(graph, seed=seed + 1)
    assert first.mst_weights == second.mst_weights
