"""Cross-module integration: both algorithms, baselines, and experiments
working together on the same instances."""

from __future__ import annotations

import pytest

from repro.analysis import EnergyModel
from repro.analysis.experiments import (
    experiment_ablation_coin,
    experiment_fig2_5,
)
from repro.baselines import run_traditional_ghs
from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    mst_weight_set,
    random_connected_graph,
    random_geometric_graph,
    ring_graph,
)
from repro.lower_bounds import theorem3_ring


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_and_deterministic_same_mst(self, seed):
        graph = random_connected_graph(14, 0.25, seed=seed)
        randomized = run_randomized_mst(graph, seed=seed)
        deterministic = run_deterministic_mst(graph)
        reference = mst_weight_set(graph)
        assert randomized.mst_weights == deterministic.mst_weights == reference

    def test_all_three_on_theorem3_ring(self):
        instance = theorem3_ring(4, seed=2)
        reference = mst_weight_set(instance.graph)
        for runner in (run_randomized_mst, run_deterministic_mst):
            assert runner(instance.graph).mst_weights == reference
        assert run_traditional_ghs(instance.graph).mst_weights == reference


class TestPaperHeadlines:
    """The three quantitative claims a reader takes away from the paper."""

    def test_awake_far_below_rounds(self):
        graph = ring_graph(128, seed=1)
        result = run_randomized_mst(graph, seed=0)
        assert result.metrics.max_awake < 300
        assert result.metrics.rounds > 10_000

    def test_sleeping_beats_traditional_by_orders_of_magnitude(self):
        graph = random_geometric_graph(64, 0.3, seed=2)
        sleeping = run_randomized_mst(graph, seed=0)
        traditional = run_traditional_ghs(graph, seed=0)
        assert traditional.metrics.max_awake > 20 * sleeping.metrics.max_awake

    def test_product_lower_bound_respected(self):
        """awake x rounds >= n for every run (Theorem 4, up to polylog)."""
        for n in (32, 64):
            graph = random_connected_graph(n, 0.1, seed=n)
            for runner in (run_randomized_mst, run_deterministic_mst):
                result = runner(graph)
                assert result.metrics.awake_round_product >= n

    def test_deterministic_pays_rounds_for_determinism(self):
        """Theorem 2 vs Theorem 1: same awake order, far more rounds."""
        graph = random_connected_graph(32, 0.15, seed=3)
        randomized = run_randomized_mst(graph, seed=0)
        deterministic = run_deterministic_mst(graph)
        assert deterministic.metrics.rounds > 3 * randomized.metrics.rounds
        assert deterministic.metrics.max_awake < 6 * randomized.metrics.max_awake


class TestEnergyStory:
    def test_sleeping_extends_battery_life(self):
        graph = random_connected_graph(32, 0.1, seed=4)
        model = EnergyModel()
        sleeping = run_randomized_mst(graph, seed=0)
        traditional = run_traditional_ghs(graph, seed=0)
        assert model.executions_per_battery(
            sleeping.metrics
        ) > 10 * model.executions_per_battery(traditional.metrics)


class TestExperimentDrivers:
    def test_fig2_5_driver(self):
        outcome = experiment_fig2_5()
        assert len({frag for frag, _ in outcome["after"].values()}) == 1

    def test_ablation_driver_quick(self):
        outcome = experiment_ablation_coin(quick=True)
        chain = outcome["moe_chain"]
        assert chain["restricted_worst_diameter"] <= 2
        assert chain["unrestricted_worst_diameter"] > 10
