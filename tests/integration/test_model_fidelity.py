"""Tests that the *model* bites: the sleeping semantics actually constrain
protocols, and the library's schedules are what make the algorithms immune.

These tests deliberately break things — skew a node's clock, fatten a
message — and assert the simulator punishes it the way the sleeping model
says it must.  They guard against the simulator silently becoming a
message-passing framework where synchrony doesn't matter.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import NOTHING, fragment_broadcast
from repro.core.harness import FLDTPlan, run_procedure
from repro.graphs import path_graph, random_connected_graph, ring_graph
from repro.sim import Awake, CongestViolation, simulate


class TestClockSkewLosesMessages:
    def test_skewed_receiver_misses_broadcast(self):
        """A node whose block clock is off by one round hears nothing —
        the alignment the Transmission-Schedule provides is load-bearing."""
        graph = path_graph(3, seed=1)
        ids = graph.node_ids

        def protocol(ctx):
            if ctx.node_id == ids[0]:
                inbox = yield Awake(5, ctx.broadcast("wave"))
            elif ctx.node_id == ids[1]:
                inbox = yield Awake(6)  # skewed: one round late
            else:
                inbox = yield Awake(5)  # but this one never gets a message
            return dict(inbox)

        result = simulate(graph, protocol)
        assert result.node_results[ids[1]] == {}
        assert result.metrics.messages_lost >= 1

    def test_aligned_schedule_loses_nothing(self):
        """Control: the real broadcast procedure on the same graph."""
        graph = path_graph(3, seed=1)
        plan = FLDTPlan.single_tree(graph, graph.node_ids[0])

        def procedure(ctx, ldt, clock, value):
            result = yield from fragment_broadcast(
                ctx, ldt, clock.take(), "wave" if ldt.is_root else NOTHING
            )
            return result

        run = run_procedure(graph, plan, procedure, refresh_neighbors=False)
        assert run.simulation.metrics.messages_lost == 0
        assert all(value == "wave" for value in run.returns.values())

    @given(skew=st.integers(min_value=1, max_value=5))
    def test_any_skew_breaks_the_exchange(self, skew):
        graph = path_graph(2, seed=2)

        def protocol(ctx):
            round_number = 3 if ctx.node_id == 1 else 3 + skew
            inbox = yield Awake(round_number, ctx.broadcast("ping"))
            return len(inbox)

        result = simulate(graph, protocol)
        assert result.node_results[1] == 0
        assert result.node_results[2] == 0
        assert result.metrics.messages_lost == 2


class TestCongestBites:
    def test_shipping_neighbour_lists_is_rejected(self):
        """A protocol that forwards whole neighbour lists (a classic
        CONGEST cheat) trips the size check on dense graphs."""
        graph = random_connected_graph(48, 0.8, seed=3)

        def protocol(ctx):
            inbox = yield Awake(1, ctx.broadcast(ctx.node_id))
            neighbour_ids = tuple(sorted(inbox.values()))
            yield Awake(2, ctx.broadcast(neighbour_ids))
            return None

        with pytest.raises(CongestViolation):
            simulate(graph, protocol)

    def test_shipped_algorithms_fit_with_tight_budget(self):
        """The real algorithms stay within even a halved budget factor."""
        from repro.core import run_randomized_mst

        graph = ring_graph(16, seed=4)
        result = run_randomized_mst(graph, seed=0, congest_factor=8)
        assert result.metrics.congest_violations == 0


class TestSleepIsSleep:
    def test_sleeping_node_sends_nothing(self):
        """Sends are attached to awake rounds only; there is no way to
        transmit while asleep (pending sends go out exactly once)."""
        graph = path_graph(2, seed=5)

        def protocol(ctx):
            if ctx.node_id == 1:
                yield Awake(1, ctx.broadcast("once"))
                inbox = yield Awake(10)
                return dict(inbox)
            first = yield Awake(1)
            second = yield Awake(10)
            return [dict(first), dict(second)]

        result = simulate(graph, protocol)
        first, second = result.node_results[2]
        assert list(first.values()) == ["once"]
        assert second == {}  # nothing re-delivered, nothing sent while asleep

    def test_awake_rounds_cost_even_when_silent(self):
        graph = path_graph(2, seed=6)

        def protocol(ctx):
            for round_number in (1, 2, 3, 4):
                yield Awake(round_number)
            return None

        result = simulate(graph, protocol)
        assert result.metrics.max_awake == 4
