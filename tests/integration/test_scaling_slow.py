"""Larger-scale runs (opt-in via ``pytest --slow``).

These push the sizes an order of magnitude past the fast suite to catch
asymptotic regressions the small tests cannot see.
"""

from __future__ import annotations

import math

import pytest

from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    mst_weight_set,
    random_connected_graph,
    ring_graph,
)

pytestmark = pytest.mark.slow


class TestRandomizedAtScale:
    def test_ring_1024(self):
        graph = ring_graph(1024, seed=1)
        result = run_randomized_mst(graph, seed=0)
        assert result.mst_weights == mst_weight_set(graph)
        # O(log n) awake with the measured constant ~30: generous cap.
        assert result.metrics.max_awake < 60 * math.log2(1024)
        assert result.metrics.rounds > 100_000  # Θ(n log n) territory

    def test_random_graph_512(self):
        graph = random_connected_graph(512, 0.02, seed=2)
        result = run_randomized_mst(graph, seed=0)
        assert result.mst_weights == mst_weight_set(graph)
        assert result.metrics.congest_violations == 0

    def test_awake_doubling_flatness_at_scale(self):
        awake = {}
        for n in (256, 1024):
            graph = ring_graph(n, seed=n)
            runs = [
                run_randomized_mst(graph, seed=s).metrics.max_awake
                for s in range(3)
            ]
            awake[n] = sum(runs) / len(runs)
        # 4x the nodes must not even double the awake complexity.
        assert awake[1024] / awake[256] < 2.0


class TestDeterministicAtScale:
    def test_random_graph_128(self):
        graph = random_connected_graph(128, 0.05, seed=3)
        result = run_deterministic_mst(graph)
        assert result.mst_weights == mst_weight_set(graph)
        assert result.metrics.max_awake < 60 * math.log2(128)

    def test_logstar_with_huge_id_space(self):
        graph = ring_graph(32, seed=4, id_range=64 * 32)
        result = run_deterministic_mst(graph, coloring="log-star")
        assert result.mst_weights == mst_weight_set(graph)
        # Rounds stay ~independent of the 2048-wide ID space.
        baseline = run_deterministic_mst(
            ring_graph(32, seed=4), coloring="log-star"
        )
        assert result.metrics.rounds < 2 * baseline.metrics.rounds
