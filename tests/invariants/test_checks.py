"""Pure checker units: every monitor's checker fires on corrupted state.

Each test class takes one paper invariant, builds a healthy probe group
(the checker stays silent), then corrupts it the way a faulted run would
and asserts the checker names the defect.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.core.coloring import BLUE, GREEN, RED
from repro.core.moe import DIR_IN, DIR_OUT
from repro.core.mst_randomized import HEADS, TAILS
from repro.graphs import path_graph
from repro.invariants import (
    BLOCK_AWAKE_BUDGETS,
    check_block_awake,
    check_coloring_legal,
    check_congest_budget,
    check_fldt_wellformed,
    check_moe_sparsification,
    check_mst_subforest,
    check_star_merge,
)
from repro.obs.spans import SpanRecord


def singleton_phase_end(graph, phase=1):
    """Healthy phase_end group: every node is its own root fragment."""
    return {
        node: {
            "phase": phase,
            "fragment": node,
            "level": 0,
            "parent_port": None,
            "children_ports": (),
            "tree_weights": (),
        }
        for node in graph.node_ids
    }


class TestFLDTWellformed:
    def test_singletons_are_wellformed(self):
        graph = path_graph(4, seed=1)
        assert check_fldt_wellformed(graph, 1, singleton_phase_end(graph)) == []

    def test_corrupted_level_detected(self):
        graph = path_graph(4, seed=1)
        snapshots = singleton_phase_end(graph)
        snapshots[2]["level"] = 3
        violations = check_fldt_wellformed(graph, 1, snapshots)
        assert len(violations) == 1
        assert violations[0].invariant == "fldt-wellformed"
        assert violations[0].phase == 1

    def test_forged_fragment_membership_detected(self):
        graph = path_graph(4, seed=1)
        snapshots = singleton_phase_end(graph)
        # Node 4 claims node 1's fragment without any tree path to it.
        snapshots[4]["fragment"] = 1
        assert check_fldt_wellformed(graph, 1, snapshots)


class TestMSTSubforest:
    def test_subset_is_silent(self):
        snapshots = {1: {"tree_weights": (5, 7)}, 2: {"tree_weights": (5,)}}
        assert check_mst_subforest({5, 7, 9}, 2, snapshots) == []

    def test_foreign_edge_detected(self):
        snapshots = {1: {"tree_weights": (5, 99)}}
        violations = check_mst_subforest({5, 7}, 2, snapshots)
        assert len(violations) == 1
        assert violations[0].invariant == "mst-subforest"
        assert violations[0].node == 1
        assert "99" in violations[0].message


def star_merge_group():
    """Fragment 10 (tails, merging) absorbs into fragment 20 (heads)."""
    return {
        1: {"phase": 1, "fragment": 10, "coin": TAILS, "moe": 5,
            "merging": 1, "owner": 1, "valid": 1, "target": 20},
        2: {"phase": 1, "fragment": 10, "coin": TAILS, "moe": 5,
            "merging": 1, "owner": 0, "valid": None, "target": None},
        3: {"phase": 1, "fragment": 20, "coin": HEADS, "moe": 7,
            "merging": 0, "owner": 1, "valid": 0, "target": 10},
    }


class TestStarMerge:
    def test_legal_star_is_silent(self):
        assert check_star_merge(1, star_merge_group()) == []

    def test_coin_disagreement_detected(self):
        group = star_merge_group()
        group[2]["coin"] = HEADS
        assert any(
            "disagree" in violation.message
            for violation in check_star_merge(1, group)
        )

    def test_two_owners_detected(self):
        group = star_merge_group()
        group[2]["owner"] = 1
        assert any(
            "owners" in violation.message
            for violation in check_star_merge(1, group)
        )

    def test_unowned_moe_detected(self):
        group = star_merge_group()
        group[1]["owner"] = 0
        assert any(
            "no member owns" in violation.message
            for violation in check_star_merge(1, group)
        )

    def test_heads_fragment_merging_detected(self):
        group = star_merge_group()
        for node in (1, 2):
            group[node]["coin"] = HEADS
        group[3]["coin"] = TAILS  # avoid an unrelated target-coin finding
        assert any(
            "only tails fragments merge" in violation.message
            for violation in check_star_merge(1, group)
        )

    def test_invalid_moe_merge_detected(self):
        group = star_merge_group()
        group[1]["valid"] = 0
        assert any(
            "valid=" in violation.message
            for violation in check_star_merge(1, group)
        )

    def test_tails_target_detected(self):
        group = star_merge_group()
        group[3]["coin"] = TAILS
        assert any(
            "must be heads" in violation.message
            for violation in check_star_merge(1, group)
        )

    def test_merging_target_breaks_star(self):
        group = star_merge_group()
        group[3]["merging"] = 1
        assert any(
            "not a star" in violation.message
            for violation in check_star_merge(1, group)
        )


def sparsify_group():
    """Fragment 1's outgoing MOE (weight 5) was selected by fragment 2."""
    return {
        1: {"phase": 2, "fragment": 1,
            "nbr_info": ((2, 5, DIR_OUT),), "selected": ()},
        2: {"phase": 2, "fragment": 2,
            "nbr_info": ((1, 5, DIR_IN),), "selected": ((1, 5),)},
    }


class TestMOESparsification:
    def test_symmetric_selection_is_silent(self):
        assert check_moe_sparsification(2, sparsify_group()) == []

    def test_more_than_three_incoming_detected(self):
        group = sparsify_group()
        group[2]["nbr_info"] = tuple(
            (frag, weight, DIR_IN) for frag, weight in
            ((1, 5), (3, 6), (4, 7), (5, 8))
        )
        group[2]["selected"] = tuple(
            (frag, weight) for frag, weight, _ in group[2]["nbr_info"]
        )
        assert any(
            "incoming" in violation.message and "limit 3" in violation.message
            for violation in check_moe_sparsification(2, group)
        )

    def test_selection_nbr_info_mismatch_detected(self):
        group = sparsify_group()
        group[2]["selected"] = ()
        assert any(
            "do not match NBR-INFO" in violation.message
            for violation in check_moe_sparsification(2, group)
        )

    def test_unselected_outgoing_moe_detected(self):
        group = sparsify_group()
        group[2]["nbr_info"] = ()
        group[2]["selected"] = ()
        assert any(
            "did not select" in violation.message
            for violation in check_moe_sparsification(2, group)
        )

    def test_nbr_info_disagreement_detected(self):
        group = sparsify_group()
        group[1] = dict(group[1])
        group[3] = {"phase": 2, "fragment": 1, "nbr_info": (), "selected": ()}
        assert any(
            "disagree" in violation.message
            for violation in check_moe_sparsification(2, group)
        )


def coloring_group():
    return {
        1: {"phase": 3, "fragment": 1, "color": BLUE,
            "nbr_colors": ((2, RED),), "nbr_fragments": (2,)},
        2: {"phase": 3, "fragment": 2, "color": RED,
            "nbr_colors": ((1, BLUE),), "nbr_fragments": (1,)},
    }


class TestColoringLegal:
    def test_proper_coloring_is_silent(self):
        assert check_coloring_legal(3, coloring_group()) == []

    def test_monochromatic_edge_detected(self):
        group = coloring_group()
        group[2]["color"] = BLUE
        group[1]["nbr_colors"] = ((2, BLUE),)
        assert any(
            "monochromatic" in violation.message
            for violation in check_coloring_legal(3, group)
        )

    def test_off_palette_color_detected(self):
        group = coloring_group()
        group[1]["color"] = 42
        assert any(
            "outside" in violation.message
            for violation in check_coloring_legal(3, group)
        )

    def test_stale_neighbour_view_detected(self):
        group = coloring_group()
        group[1]["nbr_colors"] = ((2, GREEN),)
        assert any(
            "believes neighbour" in violation.message
            for violation in check_coloring_legal(3, group)
        )

    def test_member_color_disagreement_detected(self):
        group = coloring_group()
        group[3] = dict(group[1], color=GREEN)
        assert any(
            "disagree" in violation.message
            for violation in check_coloring_legal(3, group)
        )


def block_span(name, awake, phase=2, node=7):
    path = (f"phase:{phase}", name)
    return SpanRecord(
        node=node, path=path, awake=awake, messages=0, bits=0,
        first_round=1, last_round=9, extent_first=1, extent_last=9, index=0,
    )


class TestBlockAwakeBudget:
    def test_within_budget_is_silent(self):
        budget = BLOCK_AWAKE_BUDGETS["block:upcast_moe"]
        assert check_block_awake(block_span("block:upcast_moe", budget)) == []

    def test_over_budget_detected_with_phase(self):
        record = block_span("block:upcast_moe", 50, phase=4)
        violations = check_block_awake(record)
        assert len(violations) == 1
        assert violations[0].invariant == "block-awake-budget"
        assert violations[0].phase == 4
        assert violations[0].block == "block:upcast_moe"
        assert violations[0].node == 7

    def test_non_block_spans_ignored(self):
        assert check_block_awake(block_span("merge:1", 10**6)) == []
        assert check_block_awake(block_span("phase:9", 10**6)) == []

    def test_unknown_block_uses_default_budget(self):
        assert check_block_awake(block_span("block:mystery", 4)) == []
        assert check_block_awake(block_span("block:mystery", 5))


class TestCongestBudget:
    def test_within_budget_is_silent(self):
        metrics = SimpleNamespace(congest_violations=0, max_message_bits=40)
        assert check_congest_budget(metrics, 64) == []

    def test_strict_violations_reported(self):
        metrics = SimpleNamespace(congest_violations=3, max_message_bits=90)
        violations = check_congest_budget(metrics, 64)
        assert len(violations) == 1
        assert "3 message(s)" in violations[0].message

    def test_oversize_message_reported_without_strict_count(self):
        metrics = SimpleNamespace(congest_violations=0, max_message_bits=90)
        violations = check_congest_budget(metrics, 64)
        assert len(violations) == 1
        assert "90 bits" in violations[0].message
