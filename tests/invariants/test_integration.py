"""End-to-end monitor attachment: clean runs are violation-free, monitors
change nothing observable, and faulted runs name the first broken lemma."""

from __future__ import annotations

import pytest

from repro.core import run_deterministic_mst, run_randomized_mst
from repro.graphs import (
    mst_weight_set,
    random_connected_graph,
    ring_graph,
    verify_or_diagnose,
)
from repro.invariants import build_monitor_set
from repro.orchestrator import GRAPH_FAMILIES, channel_from_spec
from repro.orchestrator.jobs import FAULT_MAX_AWAKE_EVENTS

RUNNERS = {
    "randomized": run_randomized_mst,
    "deterministic": run_deterministic_mst,
}


class TestCleanRuns:
    @pytest.mark.parametrize("algorithm", sorted(RUNNERS))
    def test_perfect_channel_has_zero_violations(self, algorithm):
        graph = random_connected_graph(20, 0.25, seed=11)
        monitors = build_monitor_set("all")
        result = RUNNERS[algorithm](graph, seed=2, monitors=monitors)
        assert result.mst_weights == mst_weight_set(graph)
        report = monitors.report
        assert report.ok(), report.summary()
        assert report.checks_run > 0
        assert report.incomplete_groups == []
        assert result.monitors is monitors
        assert result.violations == []

    @pytest.mark.parametrize("algorithm", sorted(RUNNERS))
    def test_string_spec_accepted_by_runner(self, algorithm):
        graph = ring_graph(10, seed=3)
        result = RUNNERS[algorithm](graph, seed=0, monitors="all")
        assert result.monitors is not None
        assert result.monitors.report.checks_run > 0
        assert result.violations == []

    def test_detached_monitors_are_free(self):
        assert RUNNERS["randomized"](
            ring_graph(6, seed=1), seed=0
        ).monitors is None


class TestByteIdentity:
    """Attaching monitors must not perturb the simulation itself."""

    @pytest.mark.parametrize("algorithm", sorted(RUNNERS))
    def test_metrics_and_tree_identical(self, algorithm):
        graph = random_connected_graph(16, 0.3, seed=7)
        bare = RUNNERS[algorithm](graph, seed=5)
        watched = RUNNERS[algorithm](
            graph, seed=5, monitors=build_monitor_set("all")
        )
        assert watched.mst_weights == bare.mst_weights
        assert watched.metrics.summary() == bare.metrics.summary()


class TestFaultedDiagnosis:
    def run_cell(self, drop, seed, monitors):
        graph = GRAPH_FAMILIES["gnp"](24, seed, None)
        channel = channel_from_spec(f"drop:{drop}")
        return graph, verify_or_diagnose(
            graph,
            lambda: run_randomized_mst(
                graph,
                seed=seed,
                monitors=monitors,
                channel=channel,
                max_awake_events=FAULT_MAX_AWAKE_EVENTS,
            ),
            monitors=monitors,
        )

    def test_first_failing_invariant_named(self):
        monitors = build_monitor_set("all")
        _, diagnosis = self.run_cell("0.02", 3, monitors)
        assert diagnosis.outcome == "detected_wrong"
        assert diagnosis.first_invariant == "star-merge"
        assert diagnosis.violations >= 1
        assert monitors.report.first is not None
        assert "no member owns that edge" in monitors.report.first.message

    def test_crash_produces_output_hole(self):
        _, diagnosis = self.run_cell("0.02", 3, build_monitor_set("all"))
        assert diagnosis.crashed_nodes == (4,)

    def test_finalize_happens_despite_crash(self):
        """verify_or_diagnose must finalize monitors the engine never
        finished with; incomplete probe groups are filed, not lost."""
        monitors = build_monitor_set("all")
        self.run_cell("0.02", 3, monitors)
        report = monitors.finalize()
        assert report.checks_run > 0


class TestCrashFaults:
    def test_crash_leaves_an_output_hole(self):
        """crash:1@40 kills one seeded-random node; the diagnosis must
        surface the node(s) that never produced an MST output."""
        graph = GRAPH_FAMILIES["gnp"](16, 0, None)
        monitors = build_monitor_set("all")
        diagnosis = verify_or_diagnose(
            graph,
            lambda: run_randomized_mst(
                graph,
                seed=0,
                monitors=monitors,
                channel=channel_from_spec("crash:1@40"),
                max_awake_events=FAULT_MAX_AWAKE_EVENTS,
            ),
            monitors=monitors,
        )
        assert diagnosis.outcome == "detected_wrong"
        assert diagnosis.missing_nodes != ()
        assert "missing MST output" in diagnosis.error
        assert set(diagnosis.missing_nodes) <= set(graph.node_ids)
