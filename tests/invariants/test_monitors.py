"""MonitorSet mechanics: spec resolution, buffering, modes, finalize."""

from __future__ import annotations

import pytest

from repro.graphs import mst_weight_set, path_graph
from repro.invariants import (
    MONITOR_NAMES,
    MONITOR_REGISTRY,
    FragmentCountMonitor,
    InvariantViolation,
    MonitorSet,
    MonitorView,
    MSTSubforestMonitor,
    build_monitor_set,
    resolve_monitor_spec,
)


class TestSpecResolution:
    @pytest.mark.parametrize("spec", [None, "", "off", "none", "null", "OFF"])
    def test_off_specs_resolve_to_none(self, spec):
        assert resolve_monitor_spec(spec) is None

    def test_all_is_all(self):
        assert resolve_monitor_spec("all") == "all"
        assert resolve_monitor_spec(" ALL ") == "all"

    def test_subset_canonicalized_to_registry_order(self):
        assert (
            resolve_monitor_spec("star-merge, fldt-wellformed")
            == "fldt-wellformed,star-merge"
        )

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown monitor"):
            resolve_monitor_spec("star-merge,warp-core")

    def test_build_all_has_every_monitor(self):
        monitors = build_monitor_set("all")
        assert monitors.names == MONITOR_NAMES

    def test_build_off_returns_none(self):
        assert build_monitor_set("off") is None
        assert build_monitor_set(None) is None

    def test_build_subset(self):
        monitors = build_monitor_set("star-merge")
        assert monitors.names == ("star-merge",)

    def test_registry_names_match_classes(self):
        for name, cls in MONITOR_REGISTRY.items():
            assert cls.name == name


class TestGroupBuffering:
    def make(self):
        monitors = MonitorSet([MSTSubforestMonitor()])
        graph = path_graph(3, seed=1)
        monitors.attach(graph, sorted(graph.node_ids), seed=0)
        return monitors, graph

    def snapshot(self, weight):
        return {"phase": 1, "tree_weights": (weight,), "fragment": 1,
                "level": 0, "parent_port": None, "children_ports": ()}

    def test_checker_fires_only_when_all_nodes_reported(self):
        monitors, graph = self.make()
        good = sorted(mst_weight_set(graph))[0]
        monitors.on_probe(1, 10, "phase_end", self.snapshot(good))
        monitors.on_probe(2, 10, "phase_end", self.snapshot(good))
        assert monitors.report.checks_run == 0
        monitors.on_probe(3, 10, "phase_end", self.snapshot(good))
        assert monitors.report.checks_run == 1
        assert monitors.report.ok()

    def test_unsubscribed_points_ignored(self):
        monitors, _ = self.make()
        for node in (1, 2, 3):
            monitors.on_probe(node, 5, "merge_decision", {"phase": 1})
        assert monitors.report.checks_run == 0

    def test_incomplete_group_filed_at_finalize(self):
        monitors, _ = self.make()
        monitors.on_probe(1, 10, "phase_end", self.snapshot(999))
        report = monitors.finalize()
        assert report.incomplete_groups == [("phase_end", 1, 1, 3)]
        # The group never completed, so the checker never ran on it.
        assert report.ok()

    def test_finalize_is_idempotent(self):
        monitors, _ = self.make()
        first = monitors.finalize()
        checks = first.checks_run
        second = monitors.finalize()
        assert second is first
        assert second.checks_run == checks

    def test_attach_resets_for_a_fresh_run(self):
        monitors, graph = self.make()
        monitors.on_probe(1, 10, "phase_end", self.snapshot(999))
        monitors.finalize()
        monitors.attach(graph, sorted(graph.node_ids), seed=1)
        assert monitors.report.checks_run == 0
        assert monitors.report.incomplete_groups == []
        report = monitors.finalize()
        assert report.incomplete_groups == []


class TestStrictMode:
    def test_strict_raises_on_first_violation(self):
        monitors = MonitorSet([MSTSubforestMonitor()], mode="strict")
        graph = path_graph(2, seed=1)
        monitors.attach(graph, sorted(graph.node_ids), seed=0)
        snapshot = {"phase": 1, "tree_weights": (10**9,)}
        monitors.on_probe(1, 3, "phase_end", dict(snapshot))
        with pytest.raises(InvariantViolation) as excinfo:
            monitors.on_probe(2, 3, "phase_end", dict(snapshot))
        assert excinfo.value.violation.invariant == "mst-subforest"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            MonitorSet(mode="panic")


class TestMonitorView:
    def test_reference_mst_of_weighted_graph(self):
        graph = path_graph(4, seed=2)
        view = MonitorView(graph, sorted(graph.node_ids))
        assert view.reference_mst == frozenset(mst_weight_set(graph))

    def test_reference_mst_of_duck_graph_is_none(self):
        view = MonitorView(object(), (1, 2))
        assert view.reference_mst is None
        assert view.reference_mst is None  # cached, still None


class TestFragmentCountMonitor:
    def phase_end(self, fragments, phase):
        return {
            node: {"phase": phase, "fragment": fragment}
            for node, fragment in enumerate(fragments, start=1)
        }

    def make(self, n):
        monitor = FragmentCountMonitor()
        monitor.reset(MonitorView(object(), tuple(range(1, n + 1))))
        return monitor

    def test_contraction_is_silent(self):
        monitor = self.make(4)
        assert list(monitor.check_group(
            "phase_end", 1, self.phase_end([1, 1, 3, 3], 1))) == []
        assert list(monitor.check_group(
            "phase_end", 2, self.phase_end([1, 1, 1, 1], 2))) == []

    def test_increase_detected(self):
        monitor = self.make(3)
        monitor.check_group("phase_end", 1, self.phase_end([1, 1, 1], 1))
        violations = list(
            monitor.check_group("phase_end", 2, self.phase_end([1, 2, 3], 2))
        )
        assert violations and "increased" in violations[0].message

    def test_randomized_bookkeeping_mismatch_detected(self):
        monitor = self.make(4)
        # Two fragments claim to merge, yet the count only drops by one.
        monitor.check_group(
            "merge_decision", 1,
            {1: {"phase": 1, "fragment": 1, "merging": 1},
             2: {"phase": 1, "fragment": 2, "merging": 1},
             3: {"phase": 1, "fragment": 3, "merging": 0},
             4: {"phase": 1, "fragment": 4, "merging": 0}},
        )
        violations = list(
            monitor.check_group("phase_end", 1, self.phase_end([1, 3, 3, 4], 1))
        )
        assert violations and "merged but the count went" in violations[0].message

    def test_deterministic_phase_must_contract(self):
        monitor = self.make(3)
        monitor.check_group("coloring", 1, self.phase_end([1, 2, 3], 1))
        violations = list(
            monitor.check_group("phase_end", 1, self.phase_end([1, 2, 3], 1))
        )
        assert violations and "Blue" in violations[0].message
