"""Cut-congestion accounting (Lemma 8's measurable quantity)."""

from __future__ import annotations

import pytest

from repro.core import run_randomized_mst
from repro.lower_bounds import (
    GrcTopology,
    awake_bound_from_congestion,
    cut_crossing_bits,
    dsd_marked_edges,
    middle_cut,
    r_j_cut,
    random_sd_instance,
    row_cut_bits,
)
from repro.graphs import path_graph
from repro.sim import Awake, simulate


class TestCutCrossingBits:
    def test_counts_only_crossing_messages(self):
        graph = path_graph(3, seed=1)
        ids = graph.node_ids

        def protocol(ctx):
            yield Awake(1, ctx.broadcast(7))
            return None

        result = simulate(graph, protocol, trace=True)
        # Cut {first node}: only the two messages on its single edge cross.
        crossing = cut_crossing_bits(result.trace, {ids[0]})
        total = result.metrics.total_bits
        assert 0 < crossing < total

    def test_empty_cut_counts_nothing(self):
        graph = path_graph(2, seed=2)

        def protocol(ctx):
            yield Awake(1, ctx.broadcast(1))
            return None

        result = simulate(graph, protocol, trace=True)
        assert cut_crossing_bits(result.trace, set()) == 0
        assert cut_crossing_bits(result.trace, set(graph.node_ids)) == 0

    def test_lost_messages_not_counted(self):
        graph = path_graph(2, seed=3)

        def protocol(ctx):
            # Misaligned: everything is lost.
            yield Awake(ctx.node_id, ctx.broadcast(1))
            return None

        result = simulate(graph, protocol, trace=True)
        assert result.metrics.messages_lost == 2
        assert cut_crossing_bits(result.trace, {graph.node_ids[0]}) == 0


class TestRjCut:
    @pytest.fixture(scope="class")
    def topology(self):
        return GrcTopology(4, 16)

    def test_region_contents(self, topology):
        region = r_j_cut(topology, 3)
        assert topology.node_at(1, 1) in region
        assert topology.node_at(4, 3) in region
        assert topology.node_at(1, 4) not in region
        assert set(topology.internal_nodes) <= region

    def test_region_size(self, topology):
        region = r_j_cut(topology, 5)
        assert len(region) == 5 * topology.r + len(topology.internal_nodes)

    def test_bounds(self, topology):
        with pytest.raises(ValueError):
            r_j_cut(topology, 0)
        with pytest.raises(ValueError):
            r_j_cut(topology, topology.c + 1)

    def test_middle_cut_is_half(self, topology):
        assert middle_cut(topology) == r_j_cut(topology, topology.c // 2)


class TestLemma8Arithmetic:
    def test_zero_bits_zero_bound(self):
        assert awake_bound_from_congestion(0, 7, 4, 100) == 0

    def test_pigeonhole(self):
        # 8000 bits / 4 nodes = 2000 each; degree 4 x 100-bit messages
        # = 400 bits per awake round => 5 rounds.
        assert awake_bound_from_congestion(8000, 4, 4, 100) == 5

    def test_monotone_in_bits(self):
        low = awake_bound_from_congestion(1000, 4, 4, 100)
        high = awake_bound_from_congestion(10000, 4, 4, 100)
        assert high > low


class TestGrcCongestion:
    def test_mst_run_pushes_bits_across_every_cut(self):
        """Computing an MST of G_rc is global: every R_j cut carries bits,
        and the measured awake time respects the congestion bound."""
        topology = GrcTopology(4, 16)
        instance = random_sd_instance(topology.r - 1, seed=1)
        graph, _ = topology.to_weighted_graph(
            dsd_marked_edges(topology, instance)
        )
        result = run_randomized_mst(graph, seed=0, trace=True, verify=True)
        for j in (2, topology.c // 2, topology.c - 1):
            assert row_cut_bits(result.simulation.trace, topology, j) > 0
        bits = cut_crossing_bits(
            result.simulation.trace, middle_cut(topology)
        )
        bound = awake_bound_from_congestion(
            bits,
            len(topology.internal_nodes) or 1,
            4,
            result.metrics.max_message_bits or 1,
        )
        assert result.metrics.max_awake >= bound
