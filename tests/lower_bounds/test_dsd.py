"""The direct DSD protocol (Observation 1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lower_bounds import (
    GrcTopology,
    SDInstance,
    dsd_deadline,
    random_sd_instance,
    run_dsd_flooding,
)


@pytest.fixture(scope="module")
def topology():
    return GrcTopology(4, 16)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_answers_match_truth(self, topology, seed):
        instance = random_sd_instance(topology.r - 1, seed=seed)
        result = run_dsd_flooding(topology, instance)
        assert result.correct

    @given(
        bits=st.tuples(
            st.tuples(*([st.integers(0, 1)] * 3)),
            st.tuples(*([st.integers(0, 1)] * 3)),
        )
    )
    def test_exhaustive_small_instances(self, topology, bits):
        instance = SDInstance(*bits)
        result = run_dsd_flooding(topology, instance)
        assert result.disjoint == instance.disjoint

    def test_wrong_length_rejected(self, topology):
        with pytest.raises(ValueError, match="bits"):
            run_dsd_flooding(topology, SDInstance((0,), (1,)))


class TestObservation1Timing:
    def test_completion_is_near_diameter(self, topology):
        """Completion in O(D + k) rounds — far below the relay deadline."""
        graph, _ = topology.to_weighted_graph()
        diameter = graph.diameter()
        instance = random_sd_instance(topology.r - 1, seed=1)
        result = run_dsd_flooding(topology, instance)
        assert result.completion_rounds <= diameter + 2 * instance.k + 2
        assert result.completion_rounds < result.rounds / 3

    def test_completion_scales_with_c_over_log(self):
        """Growing c grows the completion time (the diameter term)."""
        small = GrcTopology(3, 16)
        large = GrcTopology(3, 64)
        instance_small = random_sd_instance(small.r - 1, seed=2)
        instance_large = random_sd_instance(large.r - 1, seed=2)
        fast = run_dsd_flooding(small, instance_small)
        slow = run_dsd_flooding(large, instance_large)
        assert slow.completion_rounds > fast.completion_rounds

    def test_traditional_accounting(self, topology):
        instance = random_sd_instance(topology.r - 1, seed=3)
        result = run_dsd_flooding(topology, instance)
        assert result.max_awake == result.rounds
        assert result.rounds == dsd_deadline(topology.n, instance.k)

    def test_congest_discipline(self, topology):
        """One indexed bit per message: far inside the budget."""
        instance = random_sd_instance(topology.r - 1, seed=4)
        # strict_congest is on by default inside run_dsd_flooding; reaching
        # here without CongestViolation is the assertion.
        result = run_dsd_flooding(topology, instance)
        assert result.correct
