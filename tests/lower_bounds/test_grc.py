"""G_rc structure (Figure 1) and Observation 1's diameter claim."""

from __future__ import annotations

import math

import pytest

from repro.lower_bounds import GrcTopology, theorem4_regime


class TestConstruction:
    def test_node_count(self):
        topology = GrcTopology(4, 16)
        assert topology.n == 4 * 16 + topology.x_size - 1

    def test_alice_and_bob_positions(self):
        topology = GrcTopology(3, 12)
        assert topology.alice == topology.node_at(1, 1)
        assert topology.bob == topology.node_at(1, 12)

    def test_x_contains_first_and_last_columns(self):
        topology = GrcTopology(3, 12)
        assert topology.x_columns[0] == 1
        assert topology.x_columns[-1] == 12
        assert topology.alice in topology.x_nodes
        assert topology.bob in topology.x_nodes

    def test_x_size_is_power_of_two(self):
        topology = GrcTopology(4, 20)
        assert topology.x_size & (topology.x_size - 1) == 0
        assert len(topology.x_nodes) == topology.x_size

    def test_x_columns_strictly_increasing(self):
        topology = GrcTopology(3, 17)
        columns = topology.x_columns
        assert all(a < b for a, b in zip(columns, columns[1:]))

    def test_internal_tree_size(self):
        topology = GrcTopology(3, 12)
        assert len(topology.internal_nodes) == topology.x_size - 1
        assert len(topology.edges_of_category("tree")) == 2 * (topology.x_size - 1)

    def test_row_edges(self):
        topology = GrcTopology(3, 10)
        assert len(topology.edges_of_category("row")) == 3 * 9

    def test_alice_bob_attachments(self):
        topology = GrcTopology(5, 12)
        assert len(topology.edges_of_category("alice")) == 4
        assert len(topology.edges_of_category("bob")) == 4

    def test_spokes_skip_endpoint_columns(self):
        topology = GrcTopology(4, 16)
        interior_x = [c for c in topology.x_columns if c not in (1, topology.c)]
        assert len(topology.edges_of_category("spoke")) == len(interior_x) * 3

    def test_rejects_too_few_rows(self):
        with pytest.raises(ValueError):
            GrcTopology(1, 16)

    def test_rejects_too_few_columns(self):
        with pytest.raises(ValueError):
            GrcTopology(4, 2)

    def test_node_at_bounds(self):
        topology = GrcTopology(3, 10)
        with pytest.raises(ValueError):
            topology.node_at(0, 1)
        with pytest.raises(ValueError):
            topology.node_at(1, 11)


class TestWeightedInstance:
    def test_all_marked_graph_connected(self):
        topology = GrcTopology(4, 16)
        graph, _ = topology.to_weighted_graph()
        assert graph.is_connected()
        assert graph.n == topology.n

    def test_marked_lighter_than_unmarked(self):
        topology = GrcTopology(3, 12)
        marked = topology.baseline_marked_keys()
        graph, threshold = topology.to_weighted_graph(marked)
        for edge in graph.edges():
            is_marked = topology.has_edge(edge.u, edge.v) and frozenset(
                (edge.u, edge.v)
            ) in marked
            if is_marked:
                assert edge.weight <= threshold
            else:
                assert edge.weight > threshold

    def test_distinct_weights(self):
        topology = GrcTopology(3, 12)
        graph, _ = topology.to_weighted_graph(topology.baseline_marked_keys())
        weights = [edge.weight for edge in graph.edges()]
        assert len(weights) == len(set(weights))


class TestObservation1:
    """Diameter Θ(c / log n): measured against the analytic bound."""

    @pytest.mark.parametrize("r,c", [(3, 16), (4, 32), (5, 64)])
    def test_diameter_within_bound(self, r, c):
        topology = GrcTopology(r, c)
        graph, _ = topology.to_weighted_graph()
        assert graph.diameter() <= topology.diameter_upper_bound()

    def test_diameter_sublinear_in_c(self):
        """Without X and the tree, diameter would be ~c; with them it is
        O(c / log n) — check it beats c/2 comfortably."""
        topology = GrcTopology(3, 64)
        graph, _ = topology.to_weighted_graph()
        assert graph.diameter() < 64 / 2

    def test_regime_helper(self):
        r, c = theorem4_regime(360)
        assert 2 <= r < math.sqrt(360)
        assert c > math.sqrt(360)
        topology = GrcTopology(r, c)
        assert abs(topology.n - 360) < 360  # same order of magnitude
