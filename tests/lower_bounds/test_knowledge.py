"""Knowledge-growth analysis: the empirical core of Theorem 3."""

from __future__ import annotations

import pytest

from repro.core import run_randomized_mst
from repro.lower_bounds import (
    RING_GROWTH_FACTOR,
    certify_ring_run,
    knowledge_growth_curve,
    max_growth_factor,
    minimum_awake_for_reach,
    theorem3_ring,
)


class TestGrowthMath:
    def test_minimum_awake_for_reach(self):
        assert minimum_awake_for_reach(1) == 0
        assert minimum_awake_for_reach(3) == 1
        assert minimum_awake_for_reach(9) == 2
        assert minimum_awake_for_reach(10) == 3

    def test_max_growth_factor(self):
        curve = [(0, 1), (1, 3), (2, 6)]
        assert max_growth_factor(curve) == 3.0

    def test_flat_curve_growth_one(self):
        assert max_growth_factor([(0, 5), (1, 5)]) == 1.0


class TestRingCertificates:
    @pytest.fixture(scope="class")
    def tracked_run(self):
        instance = theorem3_ring(6, seed=3)
        result = run_randomized_mst(
            instance.graph, seed=1, track_knowledge=True, verify=True
        )
        return instance, result

    def test_growth_factor_never_exceeds_three(self, tracked_run):
        """On a ring each awake round at most triples the knowledge set —
        exactly the geometric-growth fact the Ω(log n) proof rests on."""
        _, result = tracked_run
        curve = knowledge_growth_curve(result.simulation.knowledge)
        assert max_growth_factor(curve) <= RING_GROWTH_FACTOR + 1e-9

    def test_certificate_holds(self, tracked_run):
        instance, result = tracked_run
        certificate = certify_ring_run(instance, result.simulation)
        assert certificate.holds
        assert certificate.observed_awake >= certificate.required_awake

    def test_decision_nodes_knew_both_heavy_edges(self, tracked_run):
        instance, result = tracked_run
        tracker = result.simulation.knowledge
        heavy = {
            instance.heaviest.u,
            instance.heaviest.v,
            instance.second_heaviest.u,
            instance.second_heaviest.v,
        }
        knowers = [
            node
            for node in instance.graph.node_ids
            if heavy <= tracker.known_nodes(node)
        ]
        assert knowers  # the MST decision forces someone to know both

    def test_certificate_requires_tracking(self):
        instance = theorem3_ring(3, seed=1)
        result = run_randomized_mst(instance.graph, seed=1)
        with pytest.raises(ValueError, match="track_knowledge"):
            certify_ring_run(instance, result.simulation)

    def test_knowledge_curve_monotone(self, tracked_run):
        _, result = tracked_run
        curve = knowledge_growth_curve(result.simulation.knowledge)
        sizes = [size for _, size in curve]
        assert sizes == sorted(sizes)


class TestSegmentStructure:
    """Lemma 11's structural fact: ring knowledge sets are contiguous arcs."""

    def test_contiguity_checker(self):
        instance = theorem3_ring(3, seed=1)
        order = instance.order
        assert instance.is_contiguous_segment(order[:4])
        assert instance.is_contiguous_segment((order[-1], order[0], order[1]))
        assert not instance.is_contiguous_segment((order[0], order[5]))
        assert instance.is_contiguous_segment(order)  # the whole ring

    def test_checker_rejects_foreign_nodes(self):
        import pytest as _pytest

        instance = theorem3_ring(3, seed=2)
        with _pytest.raises(ValueError):
            instance.is_contiguous_segment({10**9})

    def test_knowledge_sets_are_segments_throughout(self):
        """Every node's final causal knowledge on a ring run is one arc."""
        instance = theorem3_ring(5, seed=4)
        result = run_randomized_mst(
            instance.graph, seed=2, track_knowledge=True, verify=True
        )
        tracker = result.simulation.knowledge
        for node in instance.graph.node_ids:
            assert instance.is_contiguous_segment(tracker.known_nodes(node))
