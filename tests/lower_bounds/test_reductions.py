"""The SD → DSD → CSS → MST reduction chain (Lemmas 8-10)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import run_randomized_mst
from repro.lower_bounds import (
    GrcTopology,
    SDInstance,
    css_is_connected_spanning,
    dsd_marked_edges,
    mst_uses_heavy_edge,
    random_sd_instance,
    solve_sd_via_mst,
)


@pytest.fixture(scope="module")
def topology():
    return GrcTopology(4, 16)


class TestSDInstances:
    def test_disjoint_detection(self):
        assert SDInstance((1, 0, 0), (0, 1, 0)).disjoint
        assert not SDInstance((1, 0), (1, 0)).disjoint

    def test_validation(self):
        with pytest.raises(ValueError):
            SDInstance((1, 0), (1,))
        with pytest.raises(ValueError):
            SDInstance((2,), (0,))

    def test_random_instance_forcing(self):
        assert random_sd_instance(6, seed=1, force_disjoint=True).disjoint
        assert not random_sd_instance(6, seed=1, force_disjoint=False).disjoint

    def test_random_instance_deterministic(self):
        first = random_sd_instance(5, seed=7)
        second = random_sd_instance(5, seed=7)
        assert first == second


class TestEncoding:
    def test_baseline_edges_always_marked(self, topology):
        instance = SDInstance((1,) * 3, (1,) * 3)
        marked = dsd_marked_edges(topology, instance)
        assert topology.baseline_marked_keys() <= marked

    def test_bit_zero_marks_attachment(self, topology):
        instance = SDInstance((0, 1, 1), (1, 1, 1))
        marked = dsd_marked_edges(topology, instance)
        alice_edges = topology.edges_of_category("alice")
        # Row 2 (bit index 0) attachment is marked; rows 3-4 are not.
        assert alice_edges[0].key in marked
        assert alice_edges[1].key not in marked

    def test_wrong_length_rejected(self, topology):
        with pytest.raises(ValueError, match="bits"):
            dsd_marked_edges(topology, SDInstance((0,), (0,)))

    def test_css_matches_disjointness(self, topology):
        """The heart of the DSD → CSS reduction: connectivity ⟺ disjoint."""
        for seed in range(10):
            instance = random_sd_instance(topology.r - 1, seed=seed)
            marked = dsd_marked_edges(topology, instance)
            assert (
                css_is_connected_spanning(topology, marked)
                == instance.disjoint
            )

    @given(
        bits=st.tuples(
            st.tuples(*([st.integers(0, 1)] * 3)),
            st.tuples(*([st.integers(0, 1)] * 3)),
        )
    )
    def test_css_matches_disjointness_exhaustively(self, bits, topology):
        instance = SDInstance(*bits)
        marked = dsd_marked_edges(topology, instance)
        assert css_is_connected_spanning(topology, marked) == instance.disjoint


class TestMSTReduction:
    def test_oracle_end_to_end(self, topology):
        for seed in range(6):
            instance = random_sd_instance(topology.r - 1, seed=seed)
            outcome = solve_sd_via_mst(topology, instance)
            assert outcome.correct

    def test_heavy_edge_detection(self, topology):
        intersecting = random_sd_instance(
            topology.r - 1, seed=1, force_disjoint=False
        )
        marked = dsd_marked_edges(topology, intersecting)
        graph, threshold = topology.to_weighted_graph(marked)
        from repro.graphs import mst_weight_set

        assert mst_uses_heavy_edge(graph, threshold, mst_weight_set(graph))

    def test_distributed_algorithm_solves_sd(self, topology):
        """The actual sleeping-model MST answers set disjointness."""
        for force in (True, False):
            instance = random_sd_instance(
                topology.r - 1, seed=3, force_disjoint=force
            )
            outcome = solve_sd_via_mst(
                topology,
                instance,
                mst_runner=lambda graph: run_randomized_mst(
                    graph, seed=0
                ).mst_weights,
            )
            assert outcome.correct
            assert outcome.answered_disjoint == force
