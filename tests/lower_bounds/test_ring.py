"""Theorem 3 ring-family instances."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import mst_weight_set
from repro.lower_bounds import (
    expected_omitted_weight,
    ring_family,
    theorem3_ring,
)


class TestRingInstances:
    def test_size_is_4n_plus_4(self):
        assert theorem3_ring(5).ring_size == 24

    def test_ids_and_weights_poly_bounded(self):
        instance = theorem3_ring(4, seed=1)
        size = instance.ring_size
        assert all(1 <= node <= size * size for node in instance.graph.node_ids)
        assert all(
            1 <= edge.weight <= size ** 3 for edge in instance.graph.edges()
        )
        assert instance.graph.max_id == size * size

    def test_distinct_ids_and_weights(self):
        instance = theorem3_ring(6, seed=2)
        ids = instance.graph.node_ids
        weights = [edge.weight for edge in instance.graph.edges()]
        assert len(set(ids)) == len(ids)
        assert len(set(weights)) == len(weights)

    def test_heaviest_edges_identified(self):
        instance = theorem3_ring(4, seed=3)
        ordered = sorted(edge.weight for edge in instance.graph.edges())
        assert instance.heaviest.weight == ordered[-1]
        assert instance.second_heaviest.weight == ordered[-2]

    def test_mst_omits_exactly_the_heaviest(self):
        instance = theorem3_ring(4, seed=4)
        mst = mst_weight_set(instance.graph)
        assert expected_omitted_weight(instance) not in mst
        assert len(mst) == instance.ring_size - 1

    def test_separation_bounds(self):
        instance = theorem3_ring(6, seed=5)
        assert 0 <= instance.separation <= instance.ring_size // 2

    def test_deterministic_per_seed(self):
        first = theorem3_ring(5, seed=9)
        second = theorem3_ring(5, seed=9)
        assert first.graph.node_ids == second.graph.node_ids
        assert first.heaviest == second.heaviest

    @given(seed=st.integers(min_value=0, max_value=10**4))
    def test_instances_always_valid_rings(self, seed):
        instance = theorem3_ring(3, seed=seed)
        graph = instance.graph
        assert graph.is_connected()
        assert all(graph.degree(node) == 2 for node in graph.node_ids)

    def test_family_spans_sizes(self):
        instances = ring_family((2, 4, 8), seed=0)
        assert [inst.ring_size for inst in instances] == [12, 20, 36]

    def test_separation_often_large(self):
        """The proof needs Ω(n) separation with constant probability."""
        large = sum(
            1
            for seed in range(30)
            if theorem3_ring(8, seed=seed).separation >= 8
        )
        assert large >= 8  # at least a constant fraction of draws
