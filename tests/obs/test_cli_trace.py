"""The ``trace`` CLI subcommand: files on disk, validation, JSON mode."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import validate_chrome_trace


def test_trace_writes_valid_chrome_trace(tmp_path, capsys):
    output = tmp_path / "trace.json"
    code = main(
        [
            "trace",
            "--algorithm", "randomized",
            "--graph", "ring",
            "--n", "16",
            "--seed", "1",
            "--output", str(output),
        ]
    )
    assert code == 0
    payload = json.loads(output.read_text())
    assert validate_chrome_trace(payload) > 0
    text = capsys.readouterr().out
    assert "awake identity   : ok" in text
    assert "block:upcast_moe" in text


def test_trace_json_mode_with_ndjson(tmp_path, capsys):
    output = tmp_path / "trace.json"
    ndjson = tmp_path / "spans.ndjson"
    code = main(
        [
            "trace",
            "--algorithm", "deterministic",
            "--graph", "path",
            "--n", "8",
            "--seed", "0",
            "--output", str(output),
            "--ndjson", str(ndjson),
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["identity_ok"] is True
    assert payload["events"] > 0
    assert payload["spans"] > 0
    assert payload["ndjson"]["lines"] == len(ndjson.read_text().splitlines())
    validate_chrome_trace(json.loads(output.read_text()))


def test_trace_uninstrumented_baseline_still_validates(tmp_path):
    """Baselines without spans attribute everything to the root span."""
    output = tmp_path / "trace.json"
    code = main(
        [
            "trace",
            "--algorithm", "spanning-tree",
            "--graph", "ring",
            "--n", "8",
            "--output", str(output),
        ]
    )
    assert code == 0
    validate_chrome_trace(json.loads(output.read_text()))
