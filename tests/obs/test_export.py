"""Exporter tests: Chrome trace shape/validation, NDJSON, report rendering."""

from __future__ import annotations

import json

import pytest

from repro.core import run_randomized_mst
from repro.graphs import ring_graph
from repro.obs import (
    chrome_trace,
    event_log_lines,
    render_block_table,
    span_log_lines,
    split_phase,
    validate_chrome_trace,
    write_chrome_trace,
    write_ndjson,
)


@pytest.fixture(scope="module")
def observed_run():
    graph = ring_graph(8, seed=2)
    return run_randomized_mst(graph, seed=2, observe=True, trace=True, verify=True)


class TestChromeTrace:
    def test_payload_validates(self, observed_run):
        payload = chrome_trace(
            spans=observed_run.spans, trace=observed_run.simulation.trace
        )
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"])
        assert payload["metadata"]["tsUnit"] == "rounds"

    def test_span_only_and_trace_only_payloads(self, observed_run):
        validate_chrome_trace(chrome_trace(spans=observed_run.spans))
        validate_chrome_trace(chrome_trace(trace=observed_run.simulation.trace))
        with pytest.raises(ValueError):
            chrome_trace()

    def test_metadata_names_every_node(self, observed_run):
        payload = chrome_trace(spans=observed_run.spans, label="my run")
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == {f"node {n}" for n in observed_run.spans.nodes()}
        assert meta[0]["args"]["name"] == "my run"

    def test_complete_events_carry_span_args(self, observed_run):
        payload = chrome_trace(spans=observed_run.spans)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["dur"] >= 1
            assert set(event["args"]) == {"path", "awake", "messages", "bits"}

    def test_write_and_reload(self, observed_run, tmp_path):
        target = tmp_path / "trace.json"
        count = write_chrome_trace(
            target, spans=observed_run.spans, trace=observed_run.simulation.trace
        )
        payload = json.loads(target.read_text())
        assert validate_chrome_trace(payload) == count


class TestValidateRejections:
    def test_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_empty_list(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_missing_required_key(self):
        event = {"name": "x", "ph": "i", "ts": 0, "pid": 1}  # no tid
        with pytest.raises(ValueError, match="tid"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_negative_ts(self):
        event = {"name": "x", "ph": "i", "ts": -1, "pid": 1, "tid": 0}
        with pytest.raises(ValueError, match="invalid ts"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_complete_event_without_duration(self):
        event = {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_non_monotonic_ts(self):
        events = [
            {"name": "a", "ph": "i", "ts": 5, "pid": 1, "tid": 0},
            {"name": "b", "ph": "i", "ts": 4, "pid": 1, "tid": 0},
        ]
        with pytest.raises(ValueError, match="monotonicity"):
            validate_chrome_trace({"traceEvents": events})


class TestNdjson:
    def test_span_lines_round_trip(self, observed_run, tmp_path):
        target = tmp_path / "spans.ndjson"
        lines = span_log_lines(observed_run.spans)
        written = write_ndjson(target, lines)
        assert written == len(lines) == len(observed_run.spans)
        parsed = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert parsed == lines

    def test_event_lines(self, observed_run):
        lines = event_log_lines(observed_run.simulation.trace)
        assert len(lines) == len(observed_run.simulation.trace)
        assert {"round", "kind", "node", "peer", "detail"} == set(lines[0])


class TestReport:
    def test_split_phase(self):
        assert split_phase(("phase:3", "block:upcast_moe")) == (3, "block:upcast_moe")
        assert split_phase(("phase:2", "merge:1", "block:merge_up")) == (
            2,
            "merge:1/block:merge_up",
        )
        assert split_phase(("phase:4",)) == (4, "(phase)")
        assert split_phase(("block:x",)) == (None, "block:x")
        assert split_phase(()) == (None, "(unattributed)")

    def test_render_block_table(self, observed_run):
        table = render_block_table(observed_run.spans)
        lines = table.splitlines()
        assert lines[0].split()[0] == "block"
        assert lines[0].split()[-1] == "max"
        assert any("block:upcast_moe" in line for line in lines)

    def test_render_empty_log(self):
        from repro.obs import SpanLog

        assert render_block_table(SpanLog()) == "(no span data)"
