"""The tentpole guarantees, as tier-1 tests.

* **Accounting identity** — per node, the engine's awake-round counter
  equals the sum of span-attributed awake rounds (including the implicit
  root span), for every algorithm and graph family.
* **Per-block O(1) awake** — the paper's "each block costs O(1) awake
  rounds" decomposition (Theorems 1-2), measured per (node, phase, block)
  and bounded by a small constant that does not grow with ``n``.
* **Determinism** — enabling observability changes no algorithmic output:
  metrics and MST edge sets are byte-identical with ``observe`` on or off.
"""

from __future__ import annotations

import json

import pytest

from repro.core import run_deterministic_mst, run_randomized_mst
from repro.obs import block_breakdown, check_awake_identity
from repro.orchestrator import GRAPH_FAMILIES

SIZES = (8, 16, 32)
FAMILIES = ("ring", "gnp", "star")

#: Empirical per-(node, phase, block) awake ceilings with safety margin.
#: Randomized blocks cost <= 2 awake rounds (upcast/broadcast: receive +
#: forward); deterministic adds the coloring stage whose Neighbor-Awareness
#: sub-blocks repeat once per colour class, still O(1).
BLOCK_AWAKE_BOUND = {
    "randomized": 3,
    "deterministic": 10,
}

RUNNERS = {
    "randomized": run_randomized_mst,
    "deterministic": run_deterministic_mst,
}


def _run(algorithm, family, n, **kwargs):
    graph = GRAPH_FAMILIES[family](n, 1, None)
    return graph, RUNNERS[algorithm](graph, seed=1, verify=True, **kwargs)


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
@pytest.mark.parametrize("family", FAMILIES)
def test_awake_identity_per_node(algorithm, family):
    for n in SIZES:
        _, result = _run(algorithm, family, n, observe=True)
        mismatches = check_awake_identity(result.spans, result.metrics)
        assert mismatches == {}, (
            f"{algorithm}/{family}/n={n}: span sums != engine accounting: "
            f"{mismatches}"
        )
        # Instrumented algorithms attribute every awake round to a span:
        # nothing may leak into the per-node root span.
        assert result.spans.unattributed_awake() == {}


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
@pytest.mark.parametrize("family", FAMILIES)
def test_per_block_awake_is_constant(algorithm, family):
    bound = BLOCK_AWAKE_BOUND[algorithm]
    for n in SIZES:
        _, result = _run(algorithm, family, n, observe=True)
        breakdown = block_breakdown(result.spans)
        assert breakdown.blocks, "no block spans recorded"
        for (block, phase), cell in breakdown.cells.items():
            assert cell.max_awake <= bound, (
                f"{algorithm}/{family}/n={n}: block {block!r} phase "
                f"{phase}: {cell.max_awake} awake rounds > {bound}"
            )


def test_randomized_has_nine_blocks_per_full_phase():
    """The paper's phase layout: 9 blocks, visible in the span data."""
    _, result = _run("randomized", "gnp", 16, observe=True)
    breakdown = block_breakdown(result.spans)
    top_level = {b for b in breakdown.blocks if "/" not in b}
    assert top_level == {
        "block:neighbor_refresh",
        "block:upcast_moe",
        "block:broadcast_coin",
        "block:transmit_adjacent",
        "block:upcast_valid",
        "block:broadcast_valid",
        "block:merge_announce",
        "block:merge_up",
        "block:merge_down",
    }


def _canonical(result):
    return json.dumps(
        {
            "metrics": result.metrics.summary(),
            "mst": sorted(result.mst_weights),
            "phases": result.phases,
        },
        sort_keys=True,
    )


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_observability_does_not_change_the_run(algorithm):
    """Byte-identical records with instrumentation on or off."""
    for family in ("gnp", "ring"):
        _, plain = _run(algorithm, family, 16)
        _, observed = _run(algorithm, family, 16, observe=True)
        assert _canonical(plain) == _canonical(observed)
        assert plain.spans is None
        assert observed.spans is not None and len(observed.spans) > 0
