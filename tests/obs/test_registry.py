"""MetricsRegistry unit tests: instruments, labels, dumps, null registry."""

from __future__ import annotations

import pytest

from repro.obs import NULL_REGISTRY, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3
        assert counter.total() == 3

    def test_labels_split_counts(self):
        counter = MetricsRegistry().counter("jobs")
        counter.inc(status="ok")
        counter.inc(status="ok")
        counter.inc(status="failed")
        assert counter.value(status="ok") == 2
        assert counter.value(status="failed") == 1
        assert counter.value(status="missing") == 0
        assert counter.total() == 3

    def test_label_order_is_irrelevant(self):
        counter = MetricsRegistry().counter("jobs")
        counter.inc(a=1, b=2)
        assert counter.value(b=2, a=1) == 1

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("jobs")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGaugeAndHistogram:
    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("rounds")
        gauge.set(10)
        gauge.set(20)
        assert gauge.value() == 20
        assert gauge.value(other="label") is None

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_empty_histogram_summary(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.summary()["count"] == 0


class TestRegistry:
    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_dump_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(status="ok")
        registry.gauge("rounds").set(7)
        registry.histogram("t").observe(2.0)
        dump = registry.dump()
        assert dump["jobs{status=ok}"] == 1
        assert dump["rounds"] == 7
        assert dump["t.count"] == 1
        assert list(dump) == sorted(dump)

    def test_dump_is_deterministic_across_insertion_order(self):
        first = MetricsRegistry()
        first.counter("a").inc()
        first.counter("b").inc()
        second = MetricsRegistry()
        second.counter("b").inc()
        second.counter("a").inc()
        assert first.dump() == second.dump()


class TestNullRegistry:
    def test_all_instruments_are_noops(self):
        NULL_REGISTRY.counter("x").inc(5, status="ok")
        NULL_REGISTRY.gauge("y").set(1)
        NULL_REGISTRY.histogram("z").observe(3.0)
        assert NULL_REGISTRY.dump() == {}
        assert NULL_REGISTRY.counter("x").value() == 0
        assert not NULL_REGISTRY.enabled
        assert MetricsRegistry().enabled
