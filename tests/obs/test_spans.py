"""Span attribution semantics, via hand-written protocols on tiny graphs."""

from __future__ import annotations

import pytest

from repro.graphs import path_graph
from repro.obs import ROOT_PATH, UNATTRIBUTED, ObsRecorder
from repro.sim import Awake, simulate


def test_innermost_span_gets_the_charge():
    """An awake round at a yield belongs to the span containing the yield."""
    graph = path_graph(2, seed=0)

    def protocol(ctx):
        with ctx.span("outer"):
            yield Awake(1)
            with ctx.span("inner"):
                yield Awake(2, ctx.broadcast("hi"))
            yield Awake(3)
        yield Awake(4)
        return None

    result = simulate(graph, protocol, observe=True)
    for node in graph.node_ids:
        by_label = {r.label: r for r in result.spans.for_node(node)}
        assert set(by_label) == {UNATTRIBUTED, "outer", "outer/inner"}
        # Direct charges only: the inner span's round is not double-counted.
        assert by_label["outer"].awake == 2
        assert by_label["outer/inner"].awake == 1
        assert by_label[UNATTRIBUTED].awake == 1
        assert by_label["outer/inner"].messages == 1
        assert by_label["outer/inner"].first_round == 2


def test_extents_cover_descendants():
    graph = path_graph(2, seed=0)

    def protocol(ctx):
        with ctx.span("outer"):
            with ctx.span("inner"):
                yield Awake(5)
        return None

    result = simulate(graph, protocol, observe=True)
    outer = next(r for r in result.spans if r.label == "outer")
    # No direct charges on the parent, but the child's rounds define extent.
    assert outer.awake == 0
    assert outer.first_round is None
    assert (outer.extent_first, outer.extent_last) == (5, 5)


def test_sends_are_charged_to_the_scheduling_span():
    """Messages go out at the yield's round while the generator is suspended
    there, so the span around the yield owns them."""
    graph = path_graph(2, seed=0)

    def protocol(ctx):
        with ctx.span("talk"):
            yield Awake(1, ctx.broadcast("x"))
        with ctx.span("quiet"):
            yield Awake(2)
        return None

    result = simulate(graph, protocol, observe=True)
    for node in graph.node_ids:
        by_label = {r.label: r for r in result.spans.for_node(node)}
        assert by_label["talk"].messages == 1
        assert by_label["talk"].bits > 0
        assert by_label["quiet"].messages == 0


def test_uninstrumented_protocol_lands_in_root_span():
    graph = path_graph(3, seed=1)

    def protocol(ctx):
        yield Awake(1, ctx.broadcast(ctx.node_id))
        return None

    result = simulate(graph, protocol, observe=True)
    per_node = result.spans.per_node_awake()
    for node, stats in result.metrics.per_node.items():
        assert per_node[node] == stats.awake_rounds
    assert result.spans.unattributed_awake() == per_node


def test_span_parts_join_with_colon():
    recorder = ObsRecorder()
    obs = recorder.node_handle(0)
    with obs.span(("phase", 3)):
        obs.charge_awake(7)
    records = [r for r in recorder.spans if not r.is_root]
    assert records[0].name == "phase:3"
    assert records[0].path == ("phase:3",)


def test_unbalanced_exit_raises():
    recorder = ObsRecorder()
    obs = recorder.node_handle(0)
    with pytest.raises(RuntimeError, match="underflow"):
        obs._pop()


def test_root_path_and_close_order():
    recorder = ObsRecorder()
    for node in (2, 0, 1):
        recorder.node_handle(node)
    recorder.close()
    roots = [r for r in recorder.spans if r.is_root]
    assert [r.node for r in roots] == [0, 1, 2]
    assert all(r.path == ROOT_PATH for r in roots)


def test_count_feeds_registry():
    recorder = ObsRecorder()
    obs = recorder.node_handle(4)
    obs.count("algo.phases", algorithm="test")
    obs.count("algo.phases", 2, algorithm="test")
    assert recorder.registry.counter("algo.phases").value(algorithm="test") == 3
