"""End-to-end CLI coverage for ``batch``, ``--resume``, and ``--json``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.orchestrator import RunStore


def _batch(tmp_path, *extra, store="runs.jsonl"):
    return main(
        [
            "batch",
            "--algorithms", "randomized",
            "--families", "ring", "gnp",
            "--sizes", "8", "12",
            "--seeds", "2",
            "--workers", "2",
            "--store", str(tmp_path / store),
            "--cache-dir", str(tmp_path / "cache"),
            "--quiet",
            *extra,
        ]
    )


class TestBatchCLI:
    def test_batch_writes_store_and_exits_zero(self, tmp_path, capsys):
        assert _batch(tmp_path) == 0
        out = capsys.readouterr().out
        assert "executed  : 8" in out
        records = RunStore(tmp_path / "runs.jsonl").load()
        assert len(records) == 8
        assert all(record.status == "ok" for record in records)

    def test_second_invocation_served_from_cache(self, tmp_path, capsys):
        assert _batch(tmp_path) == 0
        capsys.readouterr()
        assert _batch(tmp_path, "--json", store="again.jsonl") == 0
        payload = json.loads(capsys.readouterr().out)
        # The acceptance bar is >= 90% cache-served; identical grids hit 100%.
        assert payload["summary"]["cached"] == payload["summary"]["total"] == 8
        assert payload["summary"]["executed"] == 0
        assert payload["summary"]["cache"]["hits"] == 8

    def test_json_records_pipe_cleanly(self, tmp_path, capsys):
        assert _batch(tmp_path, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 8
        record = payload["records"][0]
        assert record["schema"] == 1
        assert record["metrics"]["correct"] is True
        assert record["spec"]["algorithm"] == "Randomized-MST"

    def test_crash_isolation_and_resume_via_cli(self, tmp_path, capsys):
        store = tmp_path / "mixed.jsonl"
        argv = [
            "batch",
            "--algorithms", "randomized", "crashing",
            "--families", "ring",
            "--sizes", "8",
            "--seeds", "2",
            "--store", str(store),
            "--no-cache",
            "--quiet",
            "--json",
        ]
        assert main(argv) == 1  # failures surface in the exit code
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["failed"] == 2
        assert payload["summary"]["ok"] == 2

        resumed = main(argv + ["--resume", str(store)])
        payload = json.loads(capsys.readouterr().out)
        assert resumed == 1
        # Only the failed cells re-execute; completed ones are resumed.
        assert payload["summary"]["resumed"] == 2
        assert payload["summary"]["executed"] == 2

    def test_spec_file_defines_grid(self, tmp_path, capsys):
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(
            json.dumps(
                {
                    "algorithms": ["randomized"],
                    "families": ["ring"],
                    "sizes": [8],
                    "seeds": [0, 5],
                }
            )
        )
        code = main(
            [
                "batch",
                "--spec", str(spec_file),
                "--store", str(tmp_path / "spec.jsonl"),
                "--no-cache",
                "--quiet",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        seeds = {record["spec"]["seed"] for record in payload["records"]}
        assert seeds == {0, 5}

    def test_unknown_algorithm_is_a_usage_error(self, tmp_path, capsys):
        code = main(
            ["batch", "--algorithms", "quantum", "--quiet",
             "--store", str(tmp_path / "x.jsonl"), "--no-cache"]
        )
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestRunJSON:
    def test_run_json_payload(self, capsys):
        code = main(
            ["run", "--graph", "ring", "--n", "8", "--seed", "1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "Randomized-MST"
        assert payload["correct"] is True
        assert payload["graph"] == {
            "family": "ring", "n": 8, "m": 8,
            "max_id": payload["graph"]["max_id"], "seed": 1,
        }
        assert payload["metrics"]["rounds"] > 0

    def test_run_text_output_unchanged(self, capsys):
        assert main(["run", "--graph", "ring", "--n", "8"]) == 0
        assert "correct MST      : True" in capsys.readouterr().out


class TestSummaryDedupeCounts:
    def test_json_summary_reports_cache_hit_rate(self, tmp_path, capsys):
        assert _batch(tmp_path, "--json") == 0
        first = json.loads(capsys.readouterr().out)["summary"]
        assert first["cached"] == 0 and first["resumed"] == 0
        assert first["cache_hit_rate"] == 0.0
        assert first["cache"]["hit_rate"] == 0.0

        assert _batch(tmp_path, "--json", store="again.jsonl") == 0
        second = json.loads(capsys.readouterr().out)["summary"]
        assert second["cached"] == second["total"] == 8
        assert second["resumed"] == 0
        assert second["cache_hit_rate"] == 1.0
        assert second["cache"]["hit_rate"] == 1.0

    def test_resumed_counts_in_json_summary(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        assert _batch(tmp_path, "--no-cache") == 0
        capsys.readouterr()
        assert (
            _batch(tmp_path, "--no-cache", "--json", "--resume", str(store))
            == 0
        )
        payload = json.loads(capsys.readouterr().out)["summary"]
        assert payload["resumed"] == 8
        assert payload["executed"] == 0
