"""Content-addressed result cache: hits, misses, versioning, corruption."""

from __future__ import annotations

from repro.orchestrator import JobSpec, ResultCache, RunRecord


def _record(seed: int = 0) -> RunRecord:
    spec = JobSpec.create("randomized", "ring", 8, seed)
    return RunRecord.ok(
        spec,
        {"algorithm": "Randomized-MST", "n": 8, "seed": seed},
        telemetry={"elapsed_s": 1.23, "pid": 999},
    )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = _record()
        assert cache.get(record.key) is None
        assert cache.put(record)
        hit = cache.get(record.key)
        assert hit is not None
        assert hit.metrics == record.metrics
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_telemetry_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = _record()
        cache.put(record)
        assert cache.get(record.key).telemetry == {}

    def test_failed_records_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.create("crashing", "ring", 8, 0)
        assert not cache.put(RunRecord.failed(spec, "boom"))
        assert cache.get(spec.key) is None

    def test_version_isolation(self, tmp_path):
        old = ResultCache(tmp_path, version="1.0.0")
        old.put(_record())
        bumped = ResultCache(tmp_path, version="2.0.0")
        assert bumped.get(_record().key) is None  # code changed: recompute

    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = _record()
        cache.put(record)
        cache.path_for(record.key).write_text("{not json", encoding="utf-8")
        assert cache.get(record.key) is None
        assert cache.stats()["corrupt"] == 1

    def test_key_mismatch_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = _record()
        other = _record(seed=5)
        cache.put(record)
        # An entry stored under the wrong address must not be served.
        cache.path_for(other.key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other.key).write_text(
            cache.path_for(record.key).read_text(), encoding="utf-8"
        )
        assert cache.get(other.key) is None
