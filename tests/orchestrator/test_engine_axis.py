"""The ``--engine`` grid axis: hash stability, worker parity, batch CLI.

The knob must be invisible when off — ``engine=None`` and
``engine="coroutine"`` grids keep their pre-axis JobSpec hashes, so
caches and stores survive the new axis — and array cells must produce
records whose deterministic portion matches the coroutine cell exactly.
"""

from __future__ import annotations

import json

import pytest

np = pytest.importorskip("numpy")

from repro.cli import main
from repro.orchestrator import JobSpec, execute_job, expand_grid
from repro.orchestrator.jobs import grid_from_payload
from repro.sim.errors import UnsupportedFeatureError


class TestEngineAxisExpansion:
    def test_default_engine_keeps_pre_axis_hashes(self):
        plain = expand_grid(["randomized"], ["ring"], [8], [0])
        off = expand_grid(["randomized"], ["ring"], [8], [0], engine=None)
        explicit = expand_grid(
            ["randomized"], ["ring"], [8], [0], engine="coroutine"
        )
        assert [s.key for s in plain] == [s.key for s in off]
        assert [s.key for s in plain] == [s.key for s in explicit]
        assert all(dict(s.options) == {} for s in plain + off + explicit)

    def test_array_engine_enters_options(self):
        specs = expand_grid(
            ["randomized"], ["ring"], [8], [0], engine="array"
        )
        assert [dict(s.options).get("engine") for s in specs] == ["array"]

    def test_array_cells_hash_differently(self):
        plain = expand_grid(["randomized"], ["ring"], [8], [0])
        array = expand_grid(["randomized"], ["ring"], [8], [0], engine="array")
        assert plain[0].key != array[0].key

    def test_unknown_engine_rejected_at_expansion(self):
        with pytest.raises(ValueError, match="unknown engine"):
            expand_grid(["randomized"], ["ring"], [8], [0], engine="simd")

    def test_payload_roundtrip(self):
        payload = {
            "algorithms": ["randomized"],
            "families": ["grid"],
            "sizes": [16],
            "seeds": 1,
            "engine": "array",
        }
        specs = grid_from_payload(payload)
        assert [dict(s.options).get("engine") for s in specs] == ["array"]

    def test_payload_without_engine_unchanged(self):
        payload = {
            "algorithms": ["randomized"],
            "families": ["grid"],
            "sizes": [16],
            "seeds": 1,
        }
        plain = expand_grid(["randomized"], ["grid"], [16], [0])
        assert [s.key for s in grid_from_payload(payload)] == [
            s.key for s in plain
        ]


class TestExecuteArrayJob:
    def test_array_record_matches_coroutine_record(self):
        # The flat metrics record — the store/cache/sweep currency — must
        # be indistinguishable between backends on the same cell.
        coroutine = execute_job(JobSpec.create("randomized", "grid", 16, 0))
        array = execute_job(
            JobSpec.create(
                "randomized", "grid", 16, 0, options={"engine": "array"}
            )
        )
        assert array == coroutine

    def test_array_jobs_deterministic(self):
        spec = JobSpec.create(
            "randomized", "gnp", 24, 1, options={"engine": "array"}
        )
        assert execute_job(spec) == execute_job(spec)

    def test_array_plus_faults_rejected_before_running(self):
        spec = JobSpec.create(
            "randomized", "ring", 8, 0,
            options={"engine": "array", "faults": "drop:0.1"},
        )
        with pytest.raises(UnsupportedFeatureError, match="fault specs"):
            execute_job(spec)

    def test_array_plus_monitors_rejected_before_running(self):
        spec = JobSpec.create(
            "randomized", "ring", 8, 0,
            options={"engine": "array", "monitors": "all"},
        )
        with pytest.raises(UnsupportedFeatureError, match="invariant monitors"):
            execute_job(spec)

    def test_array_comparator_cell_fails_loudly(self):
        spec = JobSpec.create(
            "traditional", "ring", 8, 0, options={"engine": "array"}
        )
        with pytest.raises(UnsupportedFeatureError, match="Traditional-GHS"):
            execute_job(spec)


class TestRunCLI:
    def test_run_array_plus_faults_exits_2(self, capsys):
        # Must fail fast as an unsupported configuration, not get
        # classified by verify_or_diagnose as a protocol failure.
        rc = main([
            "run", "--graph", "ring", "--n", "16",
            "--engine", "array", "--faults", "drop:0.1",
        ])
        assert rc == 2
        assert "fault specs" in capsys.readouterr().err

    def test_run_array_plus_monitors_exits_2(self, capsys):
        rc = main([
            "run", "--graph", "ring", "--n", "16",
            "--engine", "array", "--monitors", "all",
        ])
        assert rc == 2
        assert "invariant monitors" in capsys.readouterr().err

    def test_run_array_json_matches_coroutine(self, capsys):
        base = ["run", "--graph", "grid", "--n", "64", "--seed", "0", "--json"]
        assert main(base) == 0
        coroutine = json.loads(capsys.readouterr().out)
        assert main(base + ["--engine", "array"]) == 0
        array = json.loads(capsys.readouterr().out)
        assert array == coroutine


class TestBatchCLI:
    def test_batch_engine_array(self, tmp_path, capsys):
        rc = main([
            "batch", "--algorithms", "randomized", "--families", "grid",
            "--sizes", "16", "--seeds", "1", "--engine", "array",
            "--store", str(tmp_path / "runs.jsonl"), "--no-cache",
            "--quiet", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["failed"] == 0
        records = payload["records"]
        assert len(records) == 1
        assert records[0]["spec"]["options"] == {"engine": "array"}
        assert records[0]["metrics"]["correct"] is True

    def test_batch_engines_share_measurements(self, tmp_path, capsys):
        base = [
            "batch", "--algorithms", "randomized", "--families", "grid",
            "--sizes", "16", "--seeds", "1",
            "--no-cache", "--quiet", "--json",
        ]
        assert main(base + ["--store", str(tmp_path / "a.jsonl")]) == 0
        coroutine = json.loads(capsys.readouterr().out)["records"]
        assert main(
            base + ["--engine", "array", "--store", str(tmp_path / "b.jsonl")]
        ) == 0
        array = json.loads(capsys.readouterr().out)["records"]
        assert array[0]["metrics"] == coroutine[0]["metrics"]
