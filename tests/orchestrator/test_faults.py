"""The ``--faults`` grid axis: spec resolution, hashing, fault records."""

from __future__ import annotations

import pytest

from repro.orchestrator import (
    FAULT_MAX_AWAKE_EVENTS,
    JobSpec,
    channel_from_spec,
    execute_job,
    expand_grid,
    resolve_channel_spec,
)
from repro.sim import DropChannel, PerfectChannel


class TestResolveChannelSpec:
    @pytest.mark.parametrize("spec", [None, "", "perfect"])
    def test_perfect_normalizes_to_none(self, spec):
        assert resolve_channel_spec(spec) is None

    def test_fault_spec_normalized(self):
        assert resolve_channel_spec(" drop:0.05 ") == "drop:0.05"

    def test_bad_spec_lists_examples(self):
        with pytest.raises(ValueError, match="examples:"):
            resolve_channel_spec("gamma-rays:9000")

    def test_channel_from_spec(self):
        assert isinstance(channel_from_spec(None), PerfectChannel)
        assert isinstance(channel_from_spec("drop:0.05"), DropChannel)


class TestFaultAxis:
    def test_faults_expand_innermost(self):
        specs = expand_grid(
            ["randomized"], ["ring"], [8], [0, 1], faults=["perfect", "drop:0.1"]
        )
        assert len(specs) == 4
        assert [dict(spec.options).get("faults") for spec in specs] == [
            None,
            "drop:0.1",
            None,
            "drop:0.1",
        ]

    def test_perfect_cells_hash_like_pre_transport_grids(self):
        # The fault axis must not perturb fault-free cache keys: a grid
        # with an explicit "perfect" entry yields the same JobSpec keys
        # as a grid with no fault axis at all.
        plain = expand_grid(["randomized"], ["ring"], [8], [0])
        with_axis = expand_grid(
            ["randomized"], ["ring"], [8], [0], faults=["perfect"]
        )
        assert [s.key for s in plain] == [s.key for s in with_axis]

    def test_fault_cells_hash_differently_per_spec(self):
        keys = {
            spec.key
            for spec in expand_grid(
                ["randomized"],
                ["ring"],
                [8],
                [0],
                faults=["perfect", "drop:0.1", "drop:0.2", "crash:1@30"],
            )
        }
        assert len(keys) == 4

    def test_bad_fault_spec_rejected_at_expansion(self):
        with pytest.raises(ValueError, match="examples:"):
            expand_grid(["randomized"], ["ring"], [8], [0], faults=["drop:2"])


class TestExecuteFaultJob:
    def test_fault_free_record_shape_unchanged(self):
        record = execute_job(JobSpec.create("randomized", "ring", 8, 0))
        assert "faults" not in record
        assert "outcome" not in record
        assert record["correct"] is True

    def test_correct_fault_record_carries_counters(self):
        # Duplication is survivable: the run completes and is correct.
        record = execute_job(
            JobSpec.create(
                "randomized", "ring", 8, 0, options={"faults": "dup:0.2"}
            )
        )
        assert record["faults"] == "dup:0.2"
        assert record["outcome"] == "correct"
        assert record["correct"] is True
        assert record["error"] is None
        assert record["messages_duplicated"] > 0
        assert record["rounds"] > 0

    def test_failed_fault_record_keeps_shape_with_none_metrics(self):
        record = execute_job(
            JobSpec.create(
                "randomized", "ring", 8, 0, options={"faults": "crash:2@10"}
            )
        )
        assert record["faults"] == "crash:2@10"
        assert record["outcome"] in ("detected_wrong", "hung", "silent_wrong")
        assert record["correct"] is False
        assert record["error"]
        assert record["rounds"] is None and record["max_awake"] is None

    def test_fault_jobs_deterministic(self):
        spec = JobSpec.create(
            "randomized", "ring", 8, 1, options={"faults": "drop:0.02"}
        )
        assert execute_job(spec) == execute_job(spec)

    def test_fault_jobs_get_awake_event_guard(self):
        # A hung run must terminate with a classification, not spin: the
        # guard is injected for fault cells unless the caller overrides it.
        assert FAULT_MAX_AWAKE_EVENTS > 0
        record = execute_job(
            JobSpec.create(
                "randomized",
                "ring",
                8,
                0,
                options={"faults": "drop:0.9", "max_awake_events": 2000},
            )
        )
        assert record["outcome"] in ("detected_wrong", "hung")
