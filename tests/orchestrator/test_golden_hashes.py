"""Golden-hash regression: the problem registry must not move MST bytes.

The problem-bundle refactor threaded a ``problem`` axis through
``JobSpec``, ``execute_job``, and the run store.  Its hard compatibility
contract: every MST-only spec hashes and fingerprints exactly as it did
before the axis existed, so content-addressed caches, ``--resume``
stores, and committed BENCH baselines all stay valid.  The constants
below were recorded from the pre-refactor tree; if any of them moves,
the cache key space silently forked.
"""

from __future__ import annotations

import hashlib

from repro.orchestrator import (
    JobSpec,
    RunRecord,
    execute_job,
    expand_grid,
    grid_key,
)

#: Pre-refactor ``JobSpec.create(alg, "ring", 8, seed).key`` values.
GOLDEN_SPEC_KEYS = {
    ("randomized", 0):
        "26c22253ac64ab2a7c166324f80ab30c8edac0f00d5359291e8550912f79864b",
    ("deterministic", 0):
        "4dc2aa64f454cca7813fb737a05d9c1a74fd703469b519c93b7ce45943e9c67a",
    ("traditional", 0):
        "2c09494d6eed4272c92f1645801346c13476ae1bd455156a1dbd8dbfa2926a93",
    ("randomized", 1):
        "b945226657660a9955832aaa62b127d2a78b23878df7a21ab9311acbe7297960",
    ("deterministic", 1):
        "9b067dbd69671dd401964109dbb1aac315b17435fce44e0f3a4fa43477f2801d",
    ("traditional", 1):
        "1d85917463a1eea94576e3dd99b8a1defa5c1f3cab69c1909abc32e1120e372a",
}

#: Pre-refactor ``grid_key`` of the canonical 3-algorithm smoke grid.
GOLDEN_GRID_KEY = (
    "b251d966a9f33bce73291ecbde2f358418d08dbc774eb8606d691af652b9b542"
)

#: Optioned cells: faults/monitors/engine all ride the options dict.
GOLDEN_OPTIONED_KEY = (
    "23a5eb80b62d50c2cb40e21870b8d0e1673e1b3e9d6ec581e8810f7e01bd37ea"
)
GOLDEN_ARRAY_KEY = (
    "858ab03d80e25869db587e65eac99dff4a205dae5169996ddd8d6a71a70d627a"
)

#: sha256 of the full serialized RunRecord (spec + metrics + schema) for
#: two executed cells — pins record *content*, not just spec identity.
GOLDEN_FINGERPRINTS = {
    "randomized":
        "d9db5046177ff444ef0cdf5ebb6a671113160222c10fe386641bcfd285cf0cef",
    "deterministic":
        "d46c201e0d314fb5511da3a52df32c948108204180ac28b1e372db8f55fbc1ae",
}


class TestGoldenSpecKeys:
    def test_single_cell_keys_unchanged(self):
        for (algorithm, seed), expected in GOLDEN_SPEC_KEYS.items():
            spec = JobSpec.create(algorithm, "ring", 8, seed)
            assert spec.key == expected, (algorithm, seed)

    def test_explicit_mst_problem_hashes_identically(self):
        # problem="mst" must be a no-op on the payload: same key as the
        # pre-refactor spec that had no problem axis at all.
        legacy = JobSpec.create("randomized", "ring", 8, 0)
        explicit = JobSpec.create("randomized", "ring", 8, 0, problem="mst")
        assert explicit.key == legacy.key
        assert "problem" not in explicit.payload()

    def test_grid_key_unchanged(self):
        specs = expand_grid(
            ["randomized", "deterministic", "traditional"],
            ["ring", "gnp"],
            [8, 16],
            [0, 1],
        )
        assert grid_key(specs) == GOLDEN_GRID_KEY

    def test_optioned_spec_keys_unchanged(self):
        optioned = JobSpec.create(
            "randomized", "gnp", 16, 0,
            options={
                "faults": "drop:0.05", "monitors": "all", "engine": "array"
            },
        )
        assert optioned.key == GOLDEN_OPTIONED_KEY
        array = JobSpec.create(
            "randomized", "grid", 64, 3, options={"engine": "array"}
        )
        assert array.key == GOLDEN_ARRAY_KEY


class TestGoldenFingerprints:
    def test_executed_record_fingerprints_unchanged(self):
        for algorithm, expected in GOLDEN_FINGERPRINTS.items():
            spec = JobSpec.create(algorithm, "ring", 8, 0)
            record = RunRecord.ok(spec, execute_job(spec))
            digest = hashlib.sha256(record.fingerprint()).hexdigest()
            assert digest == expected, algorithm

    def test_mis_spec_hashes_apart(self):
        # The new axis must hash *differently* — an MIS cell can never
        # collide with an MST cell in the result cache.
        mst = JobSpec.create("randomized", "ring", 8, 0)
        mis = JobSpec.create("randomized", "ring", 8, 0, problem="mis")
        assert mis.algorithm == "Sleeping-MIS"
        assert mis.payload()["problem"] == "mis"
        assert mis.key != mst.key
        assert mis.key == (
            "12a618db2add8d6a504d435ab8b1c51faf2053003936fa9e9e584f86edbb1839"
        )
