"""JobSpec content hashing, grid expansion, and single-job execution."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.orchestrator import (
    JobSpec,
    canonical_json,
    execute_job,
    expand_grid,
    grid_from_payload,
    grid_key,
    resolve_algorithm,
)


class TestJobSpec:
    def test_aliases_resolve_to_canonical(self):
        spec = JobSpec.create("randomized", "ring", 8, 0)
        assert spec.algorithm == "Randomized-MST"
        assert resolve_algorithm("DETERMINISTIC") == "Deterministic-MST"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            JobSpec.create("Quantum-MST", "ring", 8, 0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            JobSpec.create("randomized", "hypercube", 8, 0)

    def test_key_is_stable_and_content_addressed(self):
        spec = JobSpec.create("randomized", "ring", 16, 3, id_range=160)
        again = JobSpec.create("Randomized-MST", "ring", 16, 3, id_range=160)
        assert spec.key == again.key
        expected = hashlib.sha256(
            canonical_json(spec.payload()).encode()
        ).hexdigest()
        assert spec.key == expected

    def test_key_distinguishes_every_field(self):
        base = JobSpec.create("randomized", "ring", 16, 0)
        variants = [
            JobSpec.create("traditional", "ring", 16, 0),
            JobSpec.create("randomized", "path", 16, 0),
            JobSpec.create("randomized", "ring", 32, 0),
            JobSpec.create("randomized", "ring", 16, 1),
            JobSpec.create("randomized", "ring", 16, 0, id_range=64),
            JobSpec.create(
                "randomized", "ring", 16, 0, options={"termination": "fixed"}
            ),
        ]
        keys = {spec.key for spec in variants} | {base.key}
        assert len(keys) == len(variants) + 1

    def test_round_trips_through_dict(self):
        spec = JobSpec.create(
            "deterministic", "gnp", 16, 2, options={"coloring": "log-star"}
        )
        clone = JobSpec.from_dict(json.loads(canonical_json(spec.to_dict())))
        assert clone == spec
        assert clone.key == spec.key


class TestExpandGrid:
    def test_shape_and_order(self):
        specs = expand_grid(
            ["randomized", "traditional"], ["ring", "path"], [8, 16], [0, 1]
        )
        assert len(specs) == 2 * 2 * 2 * 2
        # family-major, then size, seed, algorithm (the historical order).
        assert specs[0].family == "ring" and specs[0].n == 8
        assert specs[0].algorithm == "Randomized-MST"
        assert specs[1].algorithm == "Traditional-GHS"

    def test_id_range_factor(self):
        (spec,) = expand_grid(["randomized"], ["ring"], [8], [0], id_range_factor=10)
        assert spec.id_range == 80

    def test_grid_key_depends_on_content(self):
        grid_a = expand_grid(["randomized"], ["ring"], [8], [0])
        grid_b = expand_grid(["randomized"], ["ring"], [8], [1])
        assert grid_key(grid_a) != grid_key(grid_b)
        assert grid_key(grid_a) == grid_key(expand_grid(["randomized"], ["ring"], [8], [0]))


class TestExecuteJob:
    def test_metrics_record(self):
        spec = JobSpec.create("randomized", "ring", 8, 0)
        metrics = execute_job(spec)
        assert metrics["algorithm"] == "Randomized-MST"
        assert metrics["family"] == "ring"
        assert metrics["n"] == 8 and metrics["m"] == 8
        assert metrics["correct"] is True
        assert metrics["max_awake"] > 0 and metrics["rounds"] > 0

    def test_options_forwarded_to_runner(self):
        fixed = execute_job(
            JobSpec.create(
                "randomized", "ring", 8, 0, options={"termination": "fixed"}
            )
        )
        adaptive = execute_job(JobSpec.create("randomized", "ring", 8, 0))
        assert fixed["correct"] and adaptive["correct"]
        # The fixed schedule runs the paper's full phase budget.
        assert fixed["phases"] >= adaptive["phases"]

    def test_crashing_diagnostic_raises(self):
        with pytest.raises(RuntimeError, match="Crashing-MST always fails"):
            execute_job(JobSpec.create("crashing", "ring", 8, 0))


class TestGridFromPayload:
    """The JSON grid schema shared by batch --spec and POST /jobs."""

    def test_expands_like_expand_grid(self):
        payload = {
            "algorithms": ["randomized"],
            "families": ["ring", "gnp"],
            "sizes": [8, 16],
            "seeds": 2,
        }
        specs = grid_from_payload(payload)
        expected = expand_grid(["randomized"], ["ring", "gnp"], [8, 16], [0, 1])
        assert [spec.key for spec in specs] == [spec.key for spec in expected]

    def test_seed_list_and_int_are_equivalent(self):
        base = {"algorithms": ["randomized"], "families": ["ring"], "sizes": [8]}
        by_count = grid_from_payload({**base, "seeds": 2})
        by_list = grid_from_payload({**base, "seeds": [0, 1]})
        assert [s.key for s in by_count] == [s.key for s in by_list]

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown grid keys"):
            grid_from_payload(
                {"algorithms": ["randomized"], "families": ["ring"],
                 "sizes": [8], "sizzes": [8]}
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            grid_from_payload({"algorithms": [], "families": [], "sizes": []})
        with pytest.raises(ValueError, match="seed"):
            grid_from_payload(
                {"algorithms": ["randomized"], "families": ["ring"],
                 "sizes": [8], "seeds": 0}
            )

    def test_empty_axis_error_names_the_axis(self):
        base = {
            "algorithms": ["randomized"], "families": ["ring"], "sizes": [8]
        }
        for axis in ("algorithms", "families", "sizes"):
            with pytest.raises(ValueError, match=f"empty grid axis '{axis}'"):
                grid_from_payload({**base, axis: []})
        with pytest.raises(ValueError, match="empty grid axis 'seeds'"):
            grid_from_payload({**base, "seeds": []})

    def test_expand_grid_empty_axis_error_names_the_axis(self):
        for index, axis in enumerate(
            ("algorithms", "families", "sizes", "seeds")
        ):
            axes = [["randomized"], ["ring"], [8], [0]]
            axes[index] = []
            with pytest.raises(ValueError, match=f"empty grid axis '{axis}'"):
                expand_grid(*axes)
        with pytest.raises(ValueError, match="empty grid axis 'faults'"):
            expand_grid(["randomized"], ["ring"], [8], [0], faults=[])

    def test_fault_and_monitor_axes_forwarded(self):
        payload = {
            "algorithms": ["randomized"],
            "families": ["ring"],
            "sizes": [8],
            "seeds": 1,
            "faults": ["perfect", "drop:0.05"],
            "monitors": "all",
        }
        specs = grid_from_payload(payload)
        assert len(specs) == 2
        options = [dict(spec.options) for spec in specs]
        assert "faults" not in options[0]  # perfect channel stays hash-stable
        assert options[1]["faults"] == "drop:0.05"
        assert all("monitors" in opts for opts in options)
