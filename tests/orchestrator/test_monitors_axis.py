"""The ``--monitors`` grid axis: hashing, worker records, batch CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.orchestrator import JobSpec, execute_job, expand_grid


class TestMonitorAxisExpansion:
    def test_monitors_enter_options(self):
        specs = expand_grid(
            ["randomized"], ["ring"], [8], [0], monitors="all"
        )
        assert [dict(spec.options).get("monitors") for spec in specs] == ["all"]

    def test_spec_canonicalized_at_expansion(self):
        specs = expand_grid(
            ["randomized"], ["ring"], [8], [0],
            monitors="star-merge,fldt-wellformed",
        )
        assert dict(specs[0].options)["monitors"] == (
            "fldt-wellformed,star-merge"
        )

    def test_off_spec_keeps_pre_monitor_hashes(self):
        # Cache keys of unmonitored grids must not change: "off" resolves
        # to no monitors entry at all, matching pre-axis JobSpecs.
        plain = expand_grid(["randomized"], ["ring"], [8], [0])
        off = expand_grid(["randomized"], ["ring"], [8], [0], monitors="off")
        assert [s.key for s in plain] == [s.key for s in off]

    def test_monitored_cells_hash_differently(self):
        plain = expand_grid(["randomized"], ["ring"], [8], [0])
        watched = expand_grid(
            ["randomized"], ["ring"], [8], [0], monitors="all"
        )
        assert plain[0].key != watched[0].key

    def test_unknown_monitor_rejected_at_expansion(self):
        with pytest.raises(ValueError, match="unknown monitor"):
            expand_grid(
                ["randomized"], ["ring"], [8], [0], monitors="warp-core"
            )


class TestExecuteMonitoredJob:
    def test_clean_cell_reports_zero_violations(self):
        record = execute_job(
            JobSpec.create(
                "randomized", "ring", 8, 0, options={"monitors": "all"}
            )
        )
        assert record["correct"] is True
        assert record["monitors"] == "all"
        assert record["monitor_checks"] > 0
        assert record["violations"] == 0
        assert record["first_invariant"] is None

    def test_unmonitored_record_shape_unchanged(self):
        record = execute_job(JobSpec.create("randomized", "ring", 8, 0))
        assert "monitors" not in record
        assert "violations" not in record

    def test_faulted_monitored_cell_names_invariant(self):
        record = execute_job(
            JobSpec.create(
                "randomized", "gnp", 24, 3,
                options={"faults": "drop:0.02", "monitors": "all"},
            )
        )
        assert record["outcome"] == "detected_wrong"
        assert record["first_invariant"] == "star-merge"
        assert record["violations"] >= 1
        assert list(record["crashed_nodes"]) == [4]

    def test_monitored_jobs_deterministic(self):
        spec = JobSpec.create(
            "deterministic", "ring", 8, 0, options={"monitors": "all"}
        )
        assert execute_job(spec) == execute_job(spec)


class TestBatchCLI:
    def test_batch_monitors_flag(self, tmp_path, capsys):
        rc = main([
            "batch", "--algorithms", "randomized", "--families", "ring",
            "--sizes", "8", "--seeds", "1", "--monitors", "all",
            "--store", str(tmp_path / "runs.jsonl"), "--no-cache",
            "--quiet", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        records = payload["records"]
        assert len(records) == 1
        metrics = records[0]["metrics"]
        assert metrics["monitors"] == "all"
        assert metrics["violations"] == 0
        assert metrics["monitor_checks"] > 0
