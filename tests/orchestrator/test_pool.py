"""Pool execution: determinism, crash isolation, resume, timeout, retries."""

from __future__ import annotations

from repro.orchestrator import (
    STATUS_FAILED,
    STATUS_OK,
    JobSpec,
    ResultCache,
    RunStore,
    expand_grid,
    run_jobs,
)

GRID = dict(
    algorithms=["randomized", "traditional"],
    families=["ring", "gnp"],
    sizes=[8, 12],
    seeds=[0, 1],
)


class TestDeterminismUnderParallelism:
    def test_serial_pool_and_cache_records_byte_identical(self, tmp_path):
        """Same JobSpec => byte-identical metric records, however executed."""
        specs = expand_grid(**GRID)
        serial = run_jobs(specs, workers=1)
        pooled = run_jobs(specs, workers=4)

        cache = ResultCache(tmp_path / "cache")
        primed = run_jobs(specs, workers=4, cache=cache)
        replayed = run_jobs(specs, workers=1, cache=cache)
        assert replayed.cached == len(specs)
        assert replayed.executed == 0

        for a, b, c, d in zip(
            serial.records, pooled.records, primed.records, replayed.records
        ):
            assert a.status == STATUS_OK
            assert a.fingerprint() == b.fingerprint()
            assert a.fingerprint() == c.fingerprint()
            assert a.fingerprint() == d.fingerprint()

    def test_records_in_submission_order(self):
        specs = expand_grid(**GRID)
        report = run_jobs(specs, workers=4)
        assert [record.key for record in report.records] == [
            spec.key for spec in specs
        ]


class TestCrashIsolationAndResume:
    def _mixed_grid(self):
        """Two crashing cells hidden inside an otherwise healthy grid."""
        good = expand_grid(["randomized"], ["ring"], [8, 12], [0, 1])
        bad = expand_grid(["crashing"], ["ring"], [8], [0, 1])
        return good[:2] + bad + good[2:]

    def test_worker_exception_becomes_failed_record(self, tmp_path):
        specs = self._mixed_grid()
        store = tmp_path / "runs.jsonl"
        report = run_jobs(specs, workers=4, store=store)
        assert report.failed == 2
        by_status = {record.status for record in report.records}
        assert by_status == {STATUS_OK, STATUS_FAILED}
        for failure in report.failures():
            assert failure.spec["algorithm"] == "Crashing-MST"
            assert "Crashing-MST always fails" in failure.error
        # The rest of the grid completed and everything was journaled.
        assert len(RunStore(store).load()) == len(specs)

    def test_resume_executes_only_failed_and_missing_cells(self, tmp_path):
        specs = self._mixed_grid()
        store = tmp_path / "runs.jsonl"
        first = run_jobs(specs, workers=2, store=store)
        assert first.executed == len(specs) and first.failed == 2

        # Add one brand-new cell, then resume: only the 2 failed and the
        # 1 missing cell may execute.
        extra = JobSpec.create("randomized", "path", 8, 0)
        second = run_jobs(specs + [extra], workers=2, store=store, resume=store)
        assert second.resumed == len(specs) - 2
        assert second.executed == 3
        assert second.failed == 2  # crashing cells still fail

        # Resumed records were not re-appended to the same ledger.
        appended = RunStore(store).load()
        assert len(appended) == len(specs) + 3

    def test_failed_records_never_served_from_cache(self, tmp_path):
        spec = JobSpec.create("crashing", "ring", 8, 0)
        cache = ResultCache(tmp_path / "cache")
        run_jobs([spec], cache=cache)
        report = run_jobs([spec], cache=cache)
        assert report.cached == 0 and report.executed == 1


class TestPolicy:
    def test_retries_are_bounded_and_counted(self):
        spec = JobSpec.create("crashing", "ring", 8, 0)
        report = run_jobs([spec], retries=2)
        (record,) = report.records
        assert record.status == STATUS_FAILED
        assert record.telemetry["attempts"] == 3

    def test_timeout_produces_failed_record(self):
        # Deterministic-MST at n=32 takes far longer than 5ms.
        spec = JobSpec.create("deterministic", "gnp", 32, 0)
        report = run_jobs([spec], timeout=0.005)
        (record,) = report.records
        assert record.status == STATUS_FAILED
        assert "JobTimeout" in record.error

    def test_report_summary_counts(self, tmp_path):
        specs = expand_grid(["randomized"], ["ring"], [8], [0, 1])
        cache = ResultCache(tmp_path / "cache")
        run_jobs(specs, cache=cache)
        report = run_jobs(specs, cache=cache)
        summary = report.summary()
        assert summary["cached"] == 2 and summary["executed"] == 0
        assert summary["cache"]["hits"] == 2
        assert summary["progress"]["done"] == 2
