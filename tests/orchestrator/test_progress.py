"""ProgressReporter guards and the pool's metrics-registry wiring."""

from __future__ import annotations

import io

from repro.obs import MetricsRegistry
from repro.orchestrator import (
    JobSpec,
    ProgressReporter,
    expand_grid,
    run_jobs,
)
from repro.orchestrator.store import RunRecord


def _record(status="ok", source="executed", elapsed=0.5):
    spec = JobSpec(algorithm="randomized", family="ring", n=8, seed=0)
    record = (
        RunRecord.ok(spec, {"rounds": 1})
        if status == "ok"
        else RunRecord.failed(spec, "boom")
    )
    record.telemetry = {"source": source, "elapsed_s": elapsed}
    return record


class TestGuards:
    def test_fresh_reporter_has_no_rate_or_eta(self):
        reporter = ProgressReporter(total=10)
        assert reporter.throughput == 0.0
        assert reporter.eta_s is None

    def test_zero_total_finished_eta(self):
        reporter = ProgressReporter(total=0)
        assert reporter.eta_s == 0.0

    def test_line_before_any_update_shows_unknown_eta(self):
        reporter = ProgressReporter(total=4)
        line = reporter.line()
        assert "[0/4]" in line
        assert "eta ?" in line
        assert "cached=0" in line
        assert "resumed=0" in line

    def test_throughput_appears_after_first_update(self):
        reporter = ProgressReporter(total=2)
        reporter.update(_record())
        assert reporter.throughput > 0
        assert reporter.eta_s is not None
        assert "eta ?" not in reporter.line()

    def test_summary_reports_nullable_eta(self):
        reporter = ProgressReporter(total=3)
        assert reporter.summary()["eta_s"] is None
        reporter.update(_record())
        assert isinstance(reporter.summary()["eta_s"], float)


class TestCountsAndLine:
    def test_sources_counted_and_always_shown(self):
        reporter = ProgressReporter(total=3)
        reporter.update(_record(source="cache"))
        reporter.update(_record(source="resume"))
        reporter.update(_record(status="failed"))
        assert (reporter.cached, reporter.resumed, reporter.failed) == (1, 1, 1)
        line = reporter.line()
        assert "cached=1" in line
        assert "resumed=1" in line
        assert "failed=1" in line

    def test_stream_emission(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, stream=stream)
        reporter.update(_record())
        assert "[1/1]" in stream.getvalue()


class TestPoolRegistryWiring:
    def test_run_jobs_populates_registry(self, tmp_path):
        specs = expand_grid(["randomized"], ["ring"], [8], [0, 1])
        registry = MetricsRegistry()
        report = run_jobs(specs, registry=registry)

        jobs = registry.counter("orchestrator.jobs")
        assert jobs.value(status="ok", source="executed") == 2
        assert registry.histogram("orchestrator.job_seconds").summary(
            status="ok"
        )["count"] == 2

        assert report.metrics == registry.dump()
        assert report.summary()["metrics"] == report.metrics
        assert "orchestrator.jobs{source=executed,status=ok}" in report.metrics

    def test_registry_sees_cache_and_failures(self, tmp_path):
        specs = expand_grid(["randomized"], ["ring"], [8], [0])
        bad = expand_grid(["crashing"], ["ring"], [8], [0])
        from repro.orchestrator import ResultCache

        cache = ResultCache(tmp_path / "cache")
        run_jobs(specs, cache=cache)  # prime

        registry = MetricsRegistry()
        run_jobs(specs + bad, cache=cache, registry=registry)
        jobs = registry.counter("orchestrator.jobs")
        assert jobs.value(status="ok", source="cache") == 1
        assert jobs.value(status="failed", source="executed") == 1

    def test_no_registry_means_no_metrics(self):
        specs = expand_grid(["randomized"], ["ring"], [8], [0])
        report = run_jobs(specs)
        assert report.metrics is None
        assert "metrics" not in report.summary()


class TestSnapshot:
    def test_snapshot_matches_summary(self):
        reporter = ProgressReporter(total=4)
        reporter.update(_record())
        reporter.update(_record(source="cache"))
        snapshot = reporter.snapshot()
        summary = reporter.summary()
        # Clock-derived fields move between calls; the counters must not.
        assert set(snapshot) == set(summary)
        for key in ("total", "done", "ok", "failed", "cached", "resumed",
                    "mean_job_s", "max_job_s"):
            assert snapshot[key] == summary[key]
        assert snapshot["done"] == 2
        assert snapshot["cached"] == 1

    def test_snapshot_mid_run_shows_partial_progress(self):
        reporter = ProgressReporter(total=10)
        for _ in range(3):
            reporter.update(_record())
        snapshot = reporter.snapshot()
        assert snapshot["done"] == 3
        assert snapshot["total"] == 10
        assert snapshot["eta_s"] is not None

    def test_snapshot_is_thread_safe_under_concurrent_updates(self):
        import threading

        reporter = ProgressReporter(total=800)
        snapshots = []
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                snapshots.append(reporter.snapshot())

        poller = threading.Thread(target=poll)
        poller.start()
        updaters = [
            threading.Thread(
                target=lambda: [reporter.update(_record()) for _ in range(200)]
            )
            for _ in range(4)
        ]
        for thread in updaters:
            thread.start()
        for thread in updaters:
            thread.join()
        stop.set()
        poller.join()

        final = reporter.snapshot()
        assert final["done"] == final["ok"] == 800
        assert len(reporter.job_seconds) == 800
        # Every interleaved snapshot was internally consistent.
        for snapshot in snapshots:
            assert snapshot["done"] == snapshot["ok"] + snapshot["failed"]
            assert 0 <= snapshot["done"] <= 800
