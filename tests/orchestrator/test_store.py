"""Append-only JSONL run store: atomic appends, load, resume bookkeeping."""

from __future__ import annotations

import json

from repro.orchestrator import (
    SCHEMA_VERSION,
    JobSpec,
    RunRecord,
    RunStore,
    load_records,
)


def _ok(seed: int) -> RunRecord:
    spec = JobSpec.create("randomized", "ring", 8, seed)
    return RunRecord.ok(spec, {"seed": seed}, telemetry={"elapsed_s": 0.1})


def _failed(seed: int) -> RunRecord:
    spec = JobSpec.create("randomized", "ring", 8, seed)
    return RunRecord.failed(spec, "RuntimeError: boom")


class TestRunStore:
    def test_append_load_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.extend([_ok(0), _failed(1)])
        loaded = store.load()
        assert [record.status for record in loaded] == ["ok", "failed"]
        assert loaded[0].metrics == {"seed": 0}
        assert loaded[1].error == "RuntimeError: boom"

    def test_records_are_schema_versioned(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(_ok(0))
        (line,) = (tmp_path / "runs.jsonl").read_text().strip().splitlines()
        assert json.loads(line)["schema"] == SCHEMA_VERSION
        assert store.load()[0].schema == SCHEMA_VERSION

    def test_missing_file_loads_empty(self, tmp_path):
        assert RunStore(tmp_path / "absent.jsonl").load() == []

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.extend([_ok(0), _ok(1)])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "key": "abc", "spe')  # torn write
        loaded = store.load()
        assert len(loaded) == 2
        assert store.skipped_lines == 1

    def test_completed_keys_skips_failures(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.extend([_ok(0), _failed(1)])
        assert store.completed_keys() == {_ok(0).key}

    def test_latest_record_wins(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(_failed(0))
        store.append(_ok(0))  # a later retry succeeded
        assert store.completed_keys() == {_ok(0).key}
        store.append(_failed(0))  # ...and then a re-run regressed
        assert store.completed_keys() == set()

    def test_load_records_helper(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(_ok(3))
        assert load_records(tmp_path / "runs.jsonl")[0].key == _ok(3).key

    def test_fingerprint_excludes_telemetry(self):
        spec = JobSpec.create("randomized", "ring", 8, 0)
        first = RunRecord.ok(spec, {"seed": 0}, telemetry={"elapsed_s": 0.5})
        second = RunRecord.ok(spec, {"seed": 0}, telemetry={"elapsed_s": 9.9})
        assert first.fingerprint() == second.fingerprint()

    def test_torn_trailing_line_logs_warning(self, tmp_path, caplog):
        """A daemon that died mid-append must resume with a warning, not
        a crash — the skipped line is named in the log."""
        import logging

        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(_ok(0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "key": "abc", "spe')  # no newline
        with caplog.at_level(logging.WARNING, "repro.orchestrator.store"):
            loaded = store.load()
        assert len(loaded) == 1
        assert store.skipped_lines == 1
        assert any(
            "line 2" in message and "torn write" in message
            for message in caplog.messages
        )

    def test_clean_load_logs_nothing(self, tmp_path, caplog):
        import logging

        store = RunStore(tmp_path / "runs.jsonl")
        store.extend([_ok(0), _ok(1)])
        with caplog.at_level(logging.WARNING, "repro.orchestrator.store"):
            store.load()
        assert not caplog.messages
