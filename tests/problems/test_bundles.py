"""The problem registry: bundle resolution, the problem axis, monitors."""

from __future__ import annotations

import pytest

from repro.core import MSTRunResult, RunResult
from repro.invariants import (
    MONITOR_NAMES,
    PROBLEM_MONITORS,
    build_monitor_set,
)
from repro.orchestrator import (
    GRAPH_FAMILIES,
    JobSpec,
    execute_job,
    expand_grid,
)
from repro.orchestrator import registry as orchestrator_registry
from repro.problems import (
    DEFAULT_PROBLEM,
    MIS_BUNDLE,
    MST_BUNDLE,
    problem_bundle,
    problem_names,
    resolve_problem,
)
from repro.problems import mst as mst_module


class TestRegistry:
    def test_both_problems_registered_mst_first(self):
        assert problem_names() == ("mst", "mis")
        assert problem_bundle("mst") is MST_BUNDLE
        assert problem_bundle("mis") is MIS_BUNDLE
        assert problem_bundle(None).name == DEFAULT_PROBLEM == "mst"

    def test_resolve_problem_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown problem"):
            resolve_problem("coloring")

    def test_orchestrator_tables_are_the_bundle_tables(self):
        # The legacy module-level tables re-export the bundle's dicts as
        # the *same objects*, so the two views can never drift.
        assert orchestrator_registry.ALGORITHMS is mst_module.ALGORITHMS
        assert (
            orchestrator_registry.DIAGNOSTIC_ALGORITHMS
            is mst_module.DIAGNOSTIC_ALGORITHMS
        )
        assert (
            orchestrator_registry.ALGORITHM_ALIASES
            is mst_module.ALGORITHM_ALIASES
        )

    def test_unknown_algorithm_error_lists_diagnostics(self):
        # Satellite: the error must list every resolvable name, the
        # diagnostic runners included, so --algorithm typos are
        # self-serviceable.
        with pytest.raises(ValueError) as excinfo:
            MST_BUNDLE.resolve_algorithm("Quantum-MST")
        message = str(excinfo.value)
        assert "unknown algorithm 'Quantum-MST' for problem 'mst'" in message
        assert "Crashing-MST" in message
        assert "Randomized-MST" in message
        assert "aliases" in message

    def test_mis_aliases_resolve(self):
        assert MIS_BUNDLE.resolve_algorithm("mis") == "Sleeping-MIS"
        assert MIS_BUNDLE.resolve_algorithm("randomized") == "Sleeping-MIS"
        with pytest.raises(ValueError, match="for problem 'mis'"):
            MIS_BUNDLE.resolve_algorithm("deterministic")

    def test_bundle_normalizers_separate(self):
        # log2 n vs log2 log2 n at n=65536: 16 vs 4.
        assert MST_BUNDLE.awake_normalizer(65536) == pytest.approx(16.0)
        assert MIS_BUNDLE.awake_normalizer(65536) == pytest.approx(4.0)


class TestRunResultSurface:
    def test_mst_result_is_problem_generic(self):
        graph = GRAPH_FAMILIES["ring"](8, 0, None)
        runner = orchestrator_registry.algorithm_runner("randomized")
        result = runner(graph, 0)
        assert isinstance(result, MSTRunResult)
        assert isinstance(result, RunResult)
        assert result.problem == "mst"
        # is_correct delegates to the legacy is_correct_mst.
        assert result.is_correct(graph) == result.is_correct_mst(graph)

    def test_generic_base_requires_is_correct(self):
        class Bare(RunResult):
            pass

        with pytest.raises(NotImplementedError):
            Bare().is_correct(None)


class TestProblemAxis:
    def test_expand_grid_carries_problem(self):
        specs = expand_grid(
            ["randomized"], ["gnp"], [8], [0, 1], problem="mis"
        )
        assert [spec.algorithm for spec in specs] == ["Sleeping-MIS"] * 2
        assert all(spec.problem == "mis" for spec in specs)

    def test_execute_mis_job_records_problem_and_correctness(self):
        spec = JobSpec.create(
            "mis", "gnp", 8, 0, options={"monitors": "all"}, problem="mis"
        )
        record = execute_job(spec)
        assert record["algorithm"] == "Sleeping-MIS"
        assert record["problem"] == "mis"
        assert record["correct"] is True
        assert record["violations"] == 0
        assert record["monitor_checks"] > 0

    def test_mst_records_have_no_problem_field(self):
        record = execute_job(JobSpec.create("randomized", "ring", 8, 0))
        assert "problem" not in record

    def test_roundtrip_preserves_problem(self):
        spec = JobSpec.create("mis", "gnp", 8, 0, problem="mis")
        assert JobSpec.from_dict(spec.payload()) == spec


class TestMonitorExpansion:
    def test_monitor_names_stay_the_mst_eight(self):
        assert len(MONITOR_NAMES) == 8
        assert PROBLEM_MONITORS["mst"] == MONITOR_NAMES

    def test_all_expands_per_problem(self):
        mst_set = build_monitor_set("all")
        mis_set = build_monitor_set("all", problem="mis")
        assert mst_set.names == MONITOR_NAMES
        assert mis_set.names == PROBLEM_MONITORS["mis"]
        assert "mis-independence" in mis_set.names
        assert "mis-independence" not in mst_set.names

    def test_explicit_mis_monitor_attachable_by_name(self):
        # Subset specs normalize to registry order, problem-independent.
        monitor_set = build_monitor_set("mis-independence,congest-bit-budget")
        assert monitor_set.names == ("congest-bit-budget", "mis-independence")
