"""Sleeping-MIS end to end: protocol, validation, reference, awake bound."""

from __future__ import annotations

import pytest

from repro.graphs import WeightedGraph
from repro.invariants import build_monitor_set
from repro.orchestrator import GRAPH_FAMILIES
from repro.problems import (
    MISNodeOutput,
    MISRunResult,
    greedy_mis,
    run_sleeping_mis,
)
from repro.problems.mis import (
    MISOutputError,
    check_local_mis_outputs,
    is_independent_set,
    is_maximal_independent_set,
    mis_phase_plan,
)
from repro.sim.errors import UnsupportedFeatureError


def _graph(family: str, n: int, seed: int) -> WeightedGraph:
    return GRAPH_FAMILIES[family](n, seed, None)


class TestPhasePlan:
    def test_loglog_length(self):
        # Theta(log log n): squaring n doubles K = log2 n, which adds one
        # halving phase and one finishing phase — never more.
        assert len(mis_phase_plan(2 ** 20)) <= len(mis_phase_plan(2 ** 10)) + 2
        assert len(mis_phase_plan(2 ** 32)) <= len(mis_phase_plan(2 ** 16)) + 2

    def test_ends_at_exponent_one(self):
        plan = mis_phase_plan(1024)
        assert plan[-1] == 1
        assert all(exponent >= 1 for exponent in plan)

    def test_trivial_graph_has_no_phases(self):
        assert mis_phase_plan(1) == ()


class TestProtocol:
    @pytest.mark.parametrize("family", ["ring", "path", "gnp", "star"])
    @pytest.mark.parametrize("n", [3, 8, 33])
    def test_produces_maximal_independent_set(self, family, n):
        graph = _graph(family, n, seed=1)
        result = run_sleeping_mis(graph, seed=1, verify=True)
        assert isinstance(result, MISRunResult)
        assert result.is_correct(graph)
        assert is_maximal_independent_set(graph, result.mis_nodes)

    def test_deterministic_under_seed(self):
        graph = _graph("gnp", 24, seed=3)
        first = run_sleeping_mis(graph, seed=7)
        second = run_sleeping_mis(graph, seed=7)
        assert first.mis_nodes == second.mis_nodes
        assert first.metrics.max_awake == second.metrics.max_awake

    def test_out_nodes_carry_domination_witnesses(self):
        graph = _graph("gnp", 16, seed=0)
        result = run_sleeping_mis(graph, seed=0)
        for node, output in result.node_outputs.items():
            if not output.in_mis:
                ports = graph.ports_of(node)
                assert any(
                    ports[port][0] in result.mis_nodes
                    for port in output.mis_ports
                )

    def test_single_node_graph(self):
        graph = WeightedGraph([1], [])
        result = run_sleeping_mis(graph, seed=0)
        assert result.mis_nodes == frozenset({1})
        assert result.phases == 0

    def test_max_phases_truncation_stays_correct(self):
        # The deterministic final-slots stage certifies correctness even
        # when every random phase is cut.
        graph = _graph("gnp", 16, seed=2)
        result = run_sleeping_mis(graph, seed=2, max_phases=0, verify=True)
        assert result.is_correct(graph)

    @pytest.mark.parametrize("n", [64, 1024])
    def test_awake_bounded_by_phase_plan(self, n):
        # The structural O(log log n) claim: every node is awake O(1)
        # rounds per phase (contend + announce) plus an O(1) final-slots
        # stage, so max awake <= 2 * |plan| + O(1).
        result = run_sleeping_mis(_graph("gnp", n, seed=0), seed=0)
        assert result.metrics.max_awake <= 2 * len(mis_phase_plan(n)) + 4

    def test_array_engine_rejected_with_fallback_hint(self):
        # Satellite: the rejection names the unsupported feature AND the
        # coroutine fallback so the error is self-serviceable.
        graph = _graph("ring", 8, seed=0)
        with pytest.raises(UnsupportedFeatureError) as excinfo:
            run_sleeping_mis(graph, seed=0, engine="array")
        message = str(excinfo.value)
        assert "Sleeping-MIS" in message
        assert "only Randomized-MST is vectorized" in message
        assert 'engine="coroutine"' in message


class TestMonitors:
    @pytest.mark.parametrize("n", [8, 24, 64])
    def test_all_monitors_stay_silent(self, n):
        graph = _graph("gnp", n, seed=1)
        monitor_set = build_monitor_set("all", problem="mis")
        assert monitor_set.names == (
            "mis-independence",
            "mis-no-uncovered-node",
            "block-awake-budget",
            "congest-bit-budget",
        )
        result = run_sleeping_mis(graph, seed=1, monitors=monitor_set)
        report = monitor_set.finalize()
        assert result.is_correct(graph)
        assert report.ok()
        assert report.checks_run > 0
        assert not report.incomplete_groups


class TestReference:
    @pytest.mark.parametrize("family", ["ring", "gnp"])
    def test_greedy_mis_is_maximal_independent(self, family):
        graph = _graph(family, 20, seed=4)
        reference = greedy_mis(graph)
        assert is_maximal_independent_set(graph, reference)

    def test_greedy_prefers_smallest_ids(self):
        graph = WeightedGraph([1, 2, 3], [(1, 2, 10), (2, 3, 20)])
        assert greedy_mis(graph) == frozenset({1, 3})


class TestValidation:
    def _outputs(self, graph, in_set):
        outputs = {}
        for node in graph.node_ids:
            ports = graph.ports_of(node)
            witnesses = frozenset(
                port for port, (nbr, _, _) in ports.items() if nbr in in_set
            )
            outputs[node] = MISNodeOutput(
                node_id=node,
                in_mis=node in in_set,
                phases=1,
                decided_phase=1,
                mis_ports=frozenset() if node in in_set else witnesses,
            )
        return outputs

    def test_accepts_valid_outputs(self):
        graph = WeightedGraph([1, 2, 3], [(1, 2, 10), (2, 3, 20)])
        certified = check_local_mis_outputs(
            graph, self._outputs(graph, {1, 3})
        )
        assert certified == frozenset({1, 3})

    def test_missing_node_raises_with_missing_list(self):
        graph = WeightedGraph([1, 2], [(1, 2, 10)])
        outputs = self._outputs(graph, {1})
        del outputs[2]
        with pytest.raises(MISOutputError, match="without MIS output") as exc:
            check_local_mis_outputs(graph, outputs)
        assert exc.value.missing == (2,)

    def test_adjacent_members_rejected(self):
        graph = WeightedGraph([1, 2], [(1, 2, 10)])
        with pytest.raises(MISOutputError, match="independence violated"):
            check_local_mis_outputs(graph, self._outputs(graph, {1, 2}))

    def test_uncovered_out_node_rejected(self):
        graph = WeightedGraph([1, 2, 3], [(1, 2, 10), (2, 3, 20)])
        with pytest.raises(MISOutputError, match="maximality violated"):
            check_local_mis_outputs(graph, self._outputs(graph, {1}))

    def test_bad_witness_port_rejected(self):
        graph = WeightedGraph([1, 2, 3], [(1, 2, 10), (2, 3, 20)])
        outputs = self._outputs(graph, {1, 3})
        outputs[2] = MISNodeOutput(
            node_id=2,
            in_mis=False,
            phases=1,
            decided_phase=1,
            mis_ports=frozenset({99}),
        )
        with pytest.raises(MISOutputError, match="domination"):
            check_local_mis_outputs(graph, outputs)

    def test_independence_helpers(self):
        graph = WeightedGraph([1, 2, 3], [(1, 2, 10), (2, 3, 20)])
        assert is_independent_set(graph, frozenset({1, 3}))
        assert not is_independent_set(graph, frozenset({1, 2}))
        assert not is_maximal_independent_set(graph, frozenset({1}))
