"""CLI coverage for ``serve`` and ``submit`` (incl. a real daemon process)."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading

import pytest

from repro.cli import main
from repro.service import JobQueue, ServiceClient, build_server

RING_ARGS = ["--families", "ring", "--sizes", "8", "--seeds", "2"]


@pytest.fixture
def service(tmp_path):
    queue = JobQueue(tmp_path / "service").start()
    server = build_server(queue, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        queue.shutdown()
        thread.join(timeout=5)


class TestSubmitCLI:
    def test_submit_wait_json(self, service, capsys):
        code = main(
            ["submit", "--url", service.url, *RING_ARGS,
             "--wait", "--json", "--quiet"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "done"
        assert payload["summary"]["failed"] == 0
        assert len(payload["records"]) == 2

    def test_submit_async_then_resubmit_coalesces(self, service, capsys):
        assert main(["submit", "--url", service.url, *RING_ARGS, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["coalesced"] is False
        ServiceClient(service.url).wait(first["job"], timeout_s=120)
        assert main(["submit", "--url", service.url, *RING_ARGS, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["coalesced"] is True
        assert second["job"] == first["job"]

    def test_submit_streams_progress_lines(self, service, capsys):
        assert main(["submit", "--url", service.url, *RING_ARGS, "--wait"]) == 0
        captured = capsys.readouterr()
        assert "status    : done" in captured.out
        # Progress lines stream on stderr while waiting.
        assert re.search(r"\[\d/2\] status=", captured.err)

    def test_submit_bad_grid_exits_2(self, service, capsys):
        code = main(
            ["submit", "--url", service.url, "--families", "ring",
             "--sizes", "8", "--seeds", "0"]
        )
        assert code == 2
        assert "seed" in capsys.readouterr().err

    def test_submit_unreachable_exits_2(self, capsys):
        code = main(["submit", "--url", "http://127.0.0.1:9", *RING_ARGS])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err


class TestServeDaemon:
    def test_serve_daemon_round_trip(self, tmp_path):
        """Start the real daemon process, talk to it, shut it down."""
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--root", str(tmp_path / "svc"), "--quiet",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://[\d.]+:\d+", banner)
            assert match, f"no URL in serve banner: {banner!r}"
            client = ServiceClient(match.group(0))
            client.wait_until_up(timeout_s=30)

            grid = {
                "algorithms": ["randomized"],
                "families": ["ring"],
                "sizes": [8],
                "seeds": 2,
            }
            first = client.submit(grid)
            final = client.wait(first["job"], timeout_s=120)
            assert final["status"] == "done"
            second = client.submit(grid)
            assert second["coalesced"] is True
            records = client.fetch(first["job"])["records"]
            assert len(records) == 2
        finally:
            process.terminate()
            process.wait(timeout=15)
