"""JobQueue lifecycle, dedupe (coalescing + cache), and daemon resume."""

from __future__ import annotations

import threading

import pytest

from repro.orchestrator import ResultCache, RunStore
from repro.service import JOB_DONE, JOB_FAILED, JOB_QUEUED, JobQueue

RING_GRID = {
    "algorithms": ["randomized"],
    "families": ["ring"],
    "sizes": [8],
    "seeds": 2,
}


@pytest.fixture
def queue(tmp_path):
    instance = JobQueue(
        tmp_path / "service", cache=ResultCache(tmp_path / "cache")
    ).start()
    yield instance
    instance.shutdown()


def _run(queue, grid):
    job, coalesced = queue.submit(grid)
    assert queue.wait(job.job_id, timeout_s=120)
    return job, coalesced


class TestLifecycle:
    def test_submit_run_fetch(self, queue):
        job, coalesced = _run(queue, RING_GRID)
        assert not coalesced
        assert job.status == JOB_DONE
        snapshot = queue.status(job.job_id)
        assert snapshot["status"] == JOB_DONE
        assert snapshot["progress"]["done"] == snapshot["progress"]["total"] == 2
        assert snapshot["summary"]["failed"] == 0
        result = queue.result(job.job_id)
        assert len(result["records"]) == 2
        assert all(r["status"] == "ok" for r in result["records"])
        # The job journals to its own per-job store.
        assert len(RunStore(job.store_path).load()) == 2

    def test_submit_is_non_blocking(self, tmp_path):
        # Queue never started: submission must return immediately with a
        # queued job rather than executing inline.
        queue = JobQueue(tmp_path / "svc")
        job, coalesced = queue.submit(RING_GRID)
        assert not coalesced
        assert job.status == JOB_QUEUED
        snapshot = queue.status(job.job_id)
        assert snapshot["progress"]["done"] == 0
        assert queue.result(job.job_id) is None

    def test_unknown_job(self, queue):
        assert queue.status("deadbeef") is None
        assert queue.result("deadbeef") is None
        with pytest.raises(KeyError):
            queue.wait("deadbeef", timeout_s=0.1)

    def test_bad_grid_raises(self, queue):
        with pytest.raises(ValueError):
            queue.submit({"algorithms": ["randomized"], "bogus_axis": [1]})
        with pytest.raises(ValueError):
            queue.submit({"algorithms": [], "families": [], "sizes": []})

    def test_cell_failures_still_complete_the_job(self, queue):
        job, _ = _run(
            queue,
            {
                "algorithms": ["crashing"],
                "families": ["ring"],
                "sizes": [8],
                "seeds": 1,
            },
        )
        assert job.status == JOB_DONE  # job finished; the cell failed
        assert queue.result(job.job_id)["summary"]["failed"] == 1


class TestDedupe:
    def test_concurrent_identical_submissions_coalesce(self, queue):
        """Two threads, one grid: one execution, byte-identical records."""
        barrier = threading.Barrier(2)
        outcomes = []

        def submit():
            barrier.wait()
            outcomes.append(queue.submit(RING_GRID))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        (job_a, _), (job_b, _) = outcomes
        assert job_a is job_b  # literally one Job object
        assert job_a.submissions == 2
        assert sum(coalesced for _, coalesced in outcomes) == 1
        assert queue.wait(job_a.job_id, timeout_s=120)
        stats = queue.stats()
        assert stats["jobs"]["total"] == 1
        assert stats["submissions"] == {"total": 2, "coalesced": 1}
        # One execution: every record was executed exactly once.
        assert queue.result(job_a.job_id)["summary"]["executed"] == 2

    def test_sequential_resubmission_returns_completed_job(self, queue):
        job, _ = _run(queue, RING_GRID)
        executed = job.report.executed
        again, coalesced = queue.submit(RING_GRID)
        assert coalesced
        assert again is job
        assert again.status == JOB_DONE
        assert again.report.executed == executed  # nothing re-ran

    def test_overlapping_grids_share_cells_byte_identically(self, queue):
        """Distinct grids overlap through the cache, records byte-equal."""
        first, _ = _run(queue, RING_GRID)
        wider = dict(RING_GRID, sizes=[8, 12])
        second, coalesced = _run(queue, wider)
        assert not coalesced
        assert second.job_id != first.job_id
        summary = queue.result(second.job_id)["summary"]
        assert summary["cached"] == 2  # the n=8 cells replayed from cache
        assert summary["executed"] == 2  # only the n=12 cells ran
        assert summary["cache_hit_rate"] > 0
        by_key = {
            record.key: record.fingerprint()
            for record in second.report.records
        }
        for record in first.report.records:
            assert by_key[record.key] == record.fingerprint()


class TestFailureAndResume:
    def test_infrastructure_failure_marks_job_failed_and_retries(
        self, tmp_path, monkeypatch
    ):
        import repro.service.queue as queue_module

        queue = JobQueue(tmp_path / "svc").start()
        try:
            def boom(*args, **kwargs):
                raise RuntimeError("pool exploded")

            monkeypatch.setattr(queue_module, "run_jobs", boom)
            job, _ = queue.submit(RING_GRID)
            assert queue.wait(job.job_id, timeout_s=30)
            assert job.status == JOB_FAILED
            assert "pool exploded" in job.error
            assert queue.result(job.job_id)["records"] == []

            # Resubmitting a failed job re-enqueues it (infrastructure
            # errors are retryable); with run_jobs restored it completes.
            monkeypatch.undo()
            retried, coalesced = queue.submit(RING_GRID)
            assert coalesced and retried is job
            assert queue.wait(job.job_id, timeout_s=120)
            assert job.status == JOB_DONE
        finally:
            queue.shutdown()

    def test_restarted_daemon_resumes_own_store(self, tmp_path):
        """A new queue over the same root resumes per-job stores, even
        after a crashed writer left a torn trailing line."""
        root = tmp_path / "svc"
        cache = ResultCache(tmp_path / "cache")
        first = JobQueue(root, cache=cache).start()
        job, _ = _run(first, RING_GRID)
        first.shutdown()

        # Simulate the daemon dying mid-append.
        with open(job.store_path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "key": "abc", "spe')

        second = JobQueue(root, cache=cache).start()
        try:
            rerun, coalesced = _run(second, RING_GRID)
            assert not coalesced  # fresh process: no in-memory job state
            assert rerun.job_id == job.job_id
            summary = second.result(rerun.job_id)["summary"]
            assert summary["executed"] == 0
            assert summary["resumed"] == 2  # served from its own store
        finally:
            second.shutdown()


class TestStatsAndHealth:
    def test_stats_shape(self, queue):
        job, _ = _run(queue, RING_GRID)
        stats = queue.stats()
        assert stats["workers"] == {"configured": 1, "alive": 1}
        assert stats["queue_depth"] == 0
        assert stats["jobs"]["done"] == 1
        assert stats["cache"]["hit_rate"] == 0.0
        assert stats["per_job"][job.job_id]["status"] == JOB_DONE
        assert stats["per_job"][job.job_id]["progress"]["done"] == 2
        assert stats["metrics"]["service.submissions{kind=new}"] == 1
        assert stats["metrics"]["service.jobs{status=done}"] == 1

    def test_healthz_reflects_worker_liveness(self, tmp_path):
        queue = JobQueue(tmp_path / "svc")
        assert queue.healthz()["ok"] is False  # not started yet
        queue.start()
        try:
            health = queue.healthz()
            assert health["ok"] is True
            assert health["workers_alive"] == 1
        finally:
            queue.shutdown()
        assert queue.healthz()["ok"] is False  # stopped
