"""End-to-end HTTP API: submit → poll → fetch over a real ephemeral port."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.orchestrator import ResultCache
from repro.service import JobQueue, ServiceClient, ServiceError, build_server

RING_GRID = {
    "algorithms": ["randomized"],
    "families": ["ring"],
    "sizes": [8],
    "seeds": 2,
}


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port backed by a started queue."""
    queue = JobQueue(
        tmp_path / "service", cache=ResultCache(tmp_path / "cache")
    ).start()
    server = build_server(queue, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        queue.shutdown()
        thread.join(timeout=5)


@pytest.fixture
def idle_service(tmp_path):
    """A server whose queue has no workers: jobs stay queued forever."""
    queue = JobQueue(tmp_path / "idle")  # never started
    server = build_server(queue, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestEndToEnd:
    def test_submit_poll_wait_fetch(self, service):
        client = ServiceClient(service.url)
        assert client.wait_until_up()["ok"] is True

        submission = client.submit(RING_GRID)
        assert submission["coalesced"] is False
        assert submission["cells"] == 2
        job = submission["job"]

        snapshots = []
        final = client.wait(job, timeout_s=120, on_progress=snapshots.append)
        assert final["status"] == "done"
        assert final["progress"]["done"] == 2
        assert snapshots  # on_progress saw at least one snapshot

        result = client.fetch(job)
        assert result["summary"]["failed"] == 0
        assert len(result["records"]) == 2
        for record in result["records"]:
            assert record["status"] == "ok"
            assert record["metrics"]["correct"] is True

    def test_duplicate_submission_coalesces_over_http(self, service):
        client = ServiceClient(service.url)
        first = client.submit(RING_GRID)
        client.wait(first["job"], timeout_s=120)
        second = client.submit(RING_GRID)
        assert second["coalesced"] is True
        assert second["job"] == first["job"]
        stats = client.stats()
        assert stats["jobs"]["total"] == 1
        assert stats["submissions"] == {"total": 2, "coalesced": 1}

    def test_stats_and_healthz(self, service):
        client = ServiceClient(service.url)
        health = client.healthz()
        assert health["ok"] is True
        assert health["workers_alive"] == 1
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["workers"]["alive"] == 1
        assert stats["cache"]["hit_rate"] == 0.0


class TestErrors:
    def test_unknown_job_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client.poll("deadbeef")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.fetch("deadbeef")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client._checked("GET", "/nope")
        assert excinfo.value.status == 404

    def test_result_before_done_409(self, idle_service):
        client = ServiceClient(idle_service.url)
        job = client.submit(RING_GRID)["job"]
        with pytest.raises(ServiceError) as excinfo:
            client.fetch(job)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["status"] == "queued"
        # ...but polling the queued job works fine.
        assert client.poll(job)["status"] == "queued"

    def test_bad_grid_400(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"algorithms": ["randomized"], "bogus": [1]})
        assert excinfo.value.status == 400
        assert "bogus" in str(excinfo.value)

    def test_malformed_json_400(self, service):
        host, port = service.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/jobs", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_non_object_grid_400(self, service):
        client = ServiceClient(service.url)
        status, payload = client._request("POST", "/jobs", ["not", "a", "dict"])
        assert status == 400
        assert "object" in payload["error"]

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=1.0)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
