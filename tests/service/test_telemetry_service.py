"""Service telemetry end-to-end: access logs, /metrics, flight events,
trace correlation, byte-identity, and client retry behaviour."""

from __future__ import annotations

import json
import logging
import threading
import urllib.request

import pytest

from repro.orchestrator import (
    ResultCache,
    RunRecord,
    grid_from_payload,
    grid_key,
    run_jobs,
)
from repro.service import JobQueue, ServiceClient, ServiceError, build_server
from repro.service.server import normalize_endpoint
from repro.telemetry import parse_prometheus, validate_promtext

RING_GRID = {
    "algorithms": ["randomized"],
    "families": ["ring"],
    "sizes": [8],
    "seeds": 2,
}


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port backed by a started queue."""
    queue = JobQueue(
        tmp_path / "service", cache=ResultCache(tmp_path / "cache")
    ).start()
    server = build_server(queue, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        queue.shutdown()
        thread.join(timeout=5)


def access_records(caplog):
    return [
        record
        for record in caplog.records
        if record.name == "repro.service.access"
        and hasattr(record, "status")
    ]


class TestAccessLog:
    def test_404_produces_exactly_one_access_record(self, service, caplog):
        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(service.url).poll("nosuchjob")
        assert excinfo.value.status == 404
        records = [r for r in access_records(caplog) if r.status == 404]
        assert len(records) == 1
        record = records[0]
        assert record.method == "GET"
        assert record.duration_ms >= 0
        assert record.trace_id

    def test_202_submission_produces_exactly_one_access_record(
        self, service, caplog
    ):
        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            submission = ServiceClient(service.url).submit(RING_GRID)
        assert submission["coalesced"] is False
        records = [r for r in access_records(caplog) if r.status == 202]
        assert len(records) == 1
        record = records[0]
        assert record.method == "POST"
        assert record.duration_ms >= 0
        # The access line and the created job share one trace ID.
        assert record.trace_id == submission["trace_id"]

    def test_client_trace_header_is_honoured_and_echoed(self, service, caplog):
        client = ServiceClient(service.url, trace_id="cafecafecafecafe")
        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            submission = client.submit(RING_GRID)
        assert submission["trace_id"] == "cafecafecafecafe"
        request = urllib.request.Request(
            f"{service.url}/healthz",
            headers={"X-Trace-Id": "beefbeefbeefbeef"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.headers["X-Trace-Id"] == "beefbeefbeefbeef"


class TestNormalizeEndpoint:
    def test_job_hashes_collapse(self):
        assert normalize_endpoint("/jobs/abc123") == "/jobs/{id}"
        assert normalize_endpoint("/jobs/abc123/result") == "/jobs/{id}/result"
        assert normalize_endpoint("/jobs/abc123/events") == "/jobs/{id}/events"

    def test_known_endpoints_pass_through(self):
        for path in ("/healthz", "/stats", "/metrics", "/jobs"):
            assert normalize_endpoint(path) == path

    def test_unknown_paths_collapse_to_other(self):
        assert normalize_endpoint("/admin/secret") == "other"
        assert normalize_endpoint("/jobs/a/b/c") == "other"


class TestMetricsEndpoint:
    def test_metrics_page_parses_and_validates(self, service):
        client = ServiceClient(service.url)
        client.submit(RING_GRID)
        client.wait(grid_key(grid_from_payload(RING_GRID)), timeout_s=120)
        client.submit(RING_GRID)  # coalesced onto the finished job
        text = client.metrics_text()
        assert validate_promtext(text) > 0
        samples = parse_prometheus(text)
        assert (
            samples.get('service_submissions_total{kind="coalesced"}', 0) >= 1
        )
        assert any(
            key.startswith("service_http_requests_total{") and value > 0
            for key, value in samples.items()
        )
        assert any(
            key.startswith("service_http_request_seconds_bucket{")
            for key in samples
        )
        assert any(
            key.startswith("service_queue_wait_seconds_bucket{")
            or key.startswith('service_queue_wait_seconds_bucket')
            for key in samples
        )
        assert any("service_worker_heartbeat" in key for key in samples)

    def test_metrics_content_type(self, service):
        with urllib.request.urlopen(f"{service.url}/metrics") as response:
            assert "version=0.0.4" in response.headers["Content-Type"]


class TestFlightRecorder:
    def test_events_chain_shares_one_trace_with_access_log(
        self, service, caplog
    ):
        client = ServiceClient(service.url)
        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            submission = client.submit(RING_GRID)
        job = submission["job"]
        client.wait(job, timeout_s=120)
        payload = client.events(job)
        assert payload["job"] == job
        kinds = [event["event"] for event in payload["events"]]
        assert kinds[0] == "submitted"
        assert "dequeued" in kinds
        assert "cell_finished" in kinds
        assert "finalized" in kinds
        assert kinds.index("submitted") < kinds.index("dequeued")
        assert kinds.index("dequeued") < kinds.index("finalized")
        traces = {
            event["trace_id"]
            for event in payload["events"]
            if "trace_id" in event
        }
        assert traces == {submission["trace_id"]}
        # ...and the POST's access record carries the same ID.
        post = [r for r in access_records(caplog) if r.status == 202]
        assert post and post[0].trace_id == submission["trace_id"]
        seqs = [event["seq"] for event in payload["events"]]
        assert seqs == sorted(seqs)
        offsets = [event["offset_ms"] for event in payload["events"]]
        assert offsets == sorted(offsets)

    def test_finalized_event_reports_outcome(self, service):
        client = ServiceClient(service.url)
        submission = client.submit(RING_GRID)
        client.wait(submission["job"], timeout_s=120)
        payload = client.events(submission["job"])
        final = [
            event
            for event in payload["events"]
            if event["event"] == "finalized"
        ]
        assert len(final) == 1
        assert final[0]["status"] == "done"
        assert final[0]["executed"] + final[0]["cached"] == 2
        assert final[0]["events_dropped"] == 0

    def test_events_404_for_unknown_job(self, service):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(service.url).events("nosuchjob")
        assert excinfo.value.status == 404

    def test_flight_file_lives_next_to_store(self, service):
        client = ServiceClient(service.url)
        submission = client.submit(RING_GRID)
        client.wait(submission["job"], timeout_s=120)
        payload = client.events(submission["job"])
        assert payload["path"].endswith(
            f"{submission['job']}.events.ndjson"
        )


class TestByteIdentity:
    def test_service_records_fingerprint_identical_to_plain_run(
        self, service, tmp_path
    ):
        """Full telemetry on: fingerprints match a telemetry-off run_jobs."""
        client = ServiceClient(service.url, trace_id="feedfacefeedface")
        submission = client.submit(RING_GRID)
        client.wait(submission["job"], timeout_s=120)
        served = client.fetch(submission["job"])["records"]

        plain = run_jobs(
            grid_from_payload(RING_GRID),
            store=tmp_path / "plain.jsonl",
        )
        service_prints = sorted(
            RunRecord.from_dict(record).fingerprint() for record in served
        )
        plain_prints = sorted(
            record.fingerprint() for record in plain.records
        )
        assert service_prints == plain_prints
        # The trace ID is present — but only in the volatile telemetry block.
        assert any(
            record["telemetry"].get("trace_id") == "feedfacefeedface"
            for record in served
        )


class TestHealthzSkippedLines:
    def test_torn_store_line_surfaces_in_healthz(self, service):
        queue = service.queue
        job_id = grid_key(grid_from_payload(RING_GRID))
        store = queue.root / "jobs" / f"{job_id}.jsonl"
        store.parent.mkdir(parents=True, exist_ok=True)
        store.write_text('{"torn": ')  # a writer died mid-append
        client = ServiceClient(service.url)
        assert client.healthz()["store_skipped_lines"] == 0
        client.submit(RING_GRID)
        client.wait(job_id, timeout_s=120)
        health = client.healthz()
        assert health["ok"] is True
        assert health["store_skipped_lines"] == 1
        assert client.stats()["store_skipped_lines"] == 1


class TestClientRetry:
    def make_client(self, snapshots, failures):
        """A client whose poll fails `failures` times, then drains snapshots."""
        client = ServiceClient(
            "http://127.0.0.1:1", retries=5, backoff_s=0.01, backoff_cap_s=0.04
        )
        state = {"failures": failures}

        def fake_poll(job):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise ServiceError(0, {"error": "connection refused"})
            return snapshots.pop(0)

        client.poll = fake_poll
        return client

    def test_wait_retries_transient_connection_errors(self, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: delays.append(s)
        )
        client = self.make_client([{"status": "done"}], failures=3)
        assert client.wait("j")["status"] == "done"
        # Capped exponential: 0.01, 0.02, then capped at 0.04.
        assert delays == [0.01, 0.02, 0.04]

    def test_wait_gives_up_after_max_consecutive_failures(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: None
        )
        client = self.make_client([], failures=100)
        with pytest.raises(ServiceError) as excinfo:
            client.wait("j")
        assert excinfo.value.status == 0

    def test_success_resets_the_failure_budget(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: None
        )
        client = ServiceClient(
            "http://127.0.0.1:1", retries=2, backoff_s=0.01
        )
        # fail, fail, running, fail, fail, done — never 3 in a row.
        script = [
            ServiceError(0, {"error": "x"}),
            ServiceError(0, {"error": "x"}),
            {"status": "running"},
            ServiceError(0, {"error": "x"}),
            ServiceError(0, {"error": "x"}),
            {"status": "done"},
        ]

        def fake_poll(job):
            step = script.pop(0)
            if isinstance(step, Exception):
                raise step
            return step

        client.poll = fake_poll
        assert client.wait("j")["status"] == "done"

    def test_http_errors_raise_immediately(self, monkeypatch):
        slept = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: slept.append(s)
        )
        client = ServiceClient("http://127.0.0.1:1", retries=5)

        def fake_poll(job):
            raise ServiceError(404, {"error": "unknown job"})

        client.poll = fake_poll
        with pytest.raises(ServiceError) as excinfo:
            client.wait("j")
        assert excinfo.value.status == 404
        assert slept == []


class TestJsonLogsOverTheWire:
    def test_snapshot_and_stats_expose_trace_id(self, service):
        client = ServiceClient(service.url)
        submission = client.submit(RING_GRID)
        assert submission["trace_id"]
        snapshot = client.poll(submission["job"])
        assert snapshot["trace_id"] == submission["trace_id"]
        payload = json.dumps(snapshot)  # JSON-safe end to end
        assert submission["trace_id"] in payload
