"""The vectorized array backend: golden equivalence + feature gating.

``engine="array"`` must be *byte-identical* to the coroutine engine on
every supported configuration — same MST edge sets, same
``Metrics.summary()``, same per-node ``NodeMetrics.as_dict()``, same
record fingerprints through the orchestrator — and must refuse loudly
(``UnsupportedFeatureError``) on everything it does not implement
(traces, observers, monitors, non-perfect channels, the deterministic
algorithm).
"""

from __future__ import annotations

import json

import pytest

np = pytest.importorskip("numpy")

from repro.core import run_deterministic_mst, run_randomized_mst
from repro.orchestrator import GRAPH_FAMILIES, JobSpec, execute_job
from repro.orchestrator.store import RunRecord
from repro.sim import ENGINES, resolve_engine
from repro.sim.errors import CongestViolation, UnsupportedFeatureError
from repro.sim.transport import DropChannel


def run_both(graph, **kwargs):
    coroutine = run_randomized_mst(graph, **kwargs)
    array = run_randomized_mst(graph, engine="array", **kwargs)
    return coroutine, array


def assert_identical(coroutine, array):
    assert coroutine.mst_weights == array.mst_weights
    assert coroutine.node_outputs == array.node_outputs
    assert coroutine.phases == array.phases
    # Byte-level equality of the metrics summary (the JSON the CLI emits).
    assert json.dumps(coroutine.metrics.summary(), sort_keys=True) == json.dumps(
        array.metrics.summary(), sort_keys=True
    )
    # Per-node metrics, including dict insertion order (sorted node IDs).
    per_coroutine = {
        node: m.as_dict() for node, m in coroutine.metrics.per_node.items()
    }
    per_array = {node: m.as_dict() for node, m in array.metrics.per_node.items()}
    assert per_coroutine == per_array
    assert list(per_coroutine) == list(per_array)


class TestEngineResolution:
    def test_default_is_coroutine(self):
        assert resolve_engine(None) == "coroutine"
        assert resolve_engine("coroutine") == "coroutine"

    def test_array_resolves(self):
        assert resolve_engine("array") == "array"

    def test_engines_constant(self):
        assert ENGINES == ("coroutine", "array")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("gpu")


class TestGoldenEquivalence:
    @pytest.mark.parametrize("family", ["path", "ring", "star", "grid", "gnp"])
    @pytest.mark.parametrize("n", [2, 5, 16, 33])
    def test_families_identical(self, family, n):
        if family == "ring" and n < 3:
            pytest.skip("a ring needs n >= 3")
        graph = GRAPH_FAMILIES[family](n, 0, None)
        assert_identical(*run_both(graph, seed=0))

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_seeds_identical(self, seed):
        # Coin parity: only current roots draw, once per phase, from
        # Random(f"{seed}/{node_id}") — any drift desynchronizes merges.
        graph = GRAPH_FAMILIES["gnp"](24, seed, None)
        assert_identical(*run_both(graph, seed=seed))

    def test_fixed_termination_identical(self):
        graph = GRAPH_FAMILIES["grid"](16, 0, None)
        assert_identical(*run_both(graph, seed=0, termination="fixed"))

    def test_sparse_id_space_identical(self):
        # Non-contiguous IDs stress the CSR index and congest universe.
        graph = GRAPH_FAMILIES["gnp"](16, 2, 8 * 16)
        assert_identical(*run_both(graph, seed=2))

    @pytest.mark.parametrize("max_phases", [0, 1, 2])
    def test_phase_budget_identical(self, max_phases):
        graph = GRAPH_FAMILIES["gnp"](16, 0, None)
        coroutine = run_randomized_mst(graph, seed=0, max_phases=max_phases)
        array = run_randomized_mst(
            graph, seed=0, max_phases=max_phases, engine="array"
        )
        assert coroutine.phases == array.phases == max_phases
        assert json.dumps(
            coroutine.metrics.summary(), sort_keys=True
        ) == json.dumps(array.metrics.summary(), sort_keys=True)

    def test_verify_accepts_array_output(self):
        graph = GRAPH_FAMILIES["grid"](25, 0, None)
        result = run_randomized_mst(graph, seed=0, engine="array", verify=True)
        assert result.is_correct_mst(graph)


class TestCongestParity:
    def test_lenient_violation_counts_match(self):
        graph = GRAPH_FAMILIES["gnp"](16, 0, None)
        coroutine, array = run_both(
            graph, seed=0, strict_congest=False, congest_factor=0.001
        )
        assert coroutine.metrics.congest_violations > 0
        assert (
            coroutine.metrics.congest_violations
            == array.metrics.congest_violations
        )

    def test_strict_raises_on_both_engines(self):
        graph = GRAPH_FAMILIES["gnp"](16, 0, None)
        with pytest.raises(CongestViolation):
            run_randomized_mst(graph, seed=0, congest_factor=0.001)
        with pytest.raises(CongestViolation):
            run_randomized_mst(
                graph, seed=0, congest_factor=0.001, engine="array"
            )

    def test_congest_universe_override_identical(self):
        graph = GRAPH_FAMILIES["path"](8, 0, None)
        assert_identical(*run_both(graph, seed=0, congest_universe=10**6))


class TestOrchestratorFingerprint:
    def test_record_fingerprints_match_through_rewrap(self):
        # ``engine`` enters the spec options (so the key differs), but the
        # *measurements* must be indistinguishable: re-wrapping the array
        # cell's metrics under the coroutine spec must reproduce that
        # record's fingerprint byte for byte.
        spec = JobSpec.create("randomized", "grid", 16, 0)
        array_spec = JobSpec.create(
            "randomized", "grid", 16, 0, options={"engine": "array"}
        )
        coroutine_record = RunRecord.ok(spec, execute_job(spec))
        rewrapped = RunRecord.ok(spec, execute_job(array_spec))
        assert rewrapped.fingerprint() == coroutine_record.fingerprint()


class TestUnsupportedFeatures:
    def test_deterministic_algorithm_rejected(self):
        graph = GRAPH_FAMILIES["ring"](8, 0, None)
        with pytest.raises(UnsupportedFeatureError, match="Deterministic-MST"):
            run_deterministic_mst(graph, engine="array")

    def test_comparator_runners_rejected(self):
        from repro.orchestrator import algorithm_runner

        graph = GRAPH_FAMILIES["ring"](8, 0, None)
        for name in ("traditional", "pipelined"):
            with pytest.raises(UnsupportedFeatureError):
                algorithm_runner(name)(graph, 0, engine="array")

    @pytest.mark.parametrize(
        "kwargs, feature",
        [
            ({"trace": True}, "event tracing"),
            ({"max_trace_events": 10}, "event tracing"),
            ({"observe": True}, "observability spans"),
            ({"track_knowledge": True}, "knowledge tracking"),
        ],
    )
    def test_sim_kwargs_rejected(self, kwargs, feature):
        graph = GRAPH_FAMILIES["ring"](8, 0, None)
        with pytest.raises(UnsupportedFeatureError, match=feature):
            run_randomized_mst(graph, seed=0, engine="array", **kwargs)

    def test_monitors_rejected(self):
        from repro.invariants import build_monitor_set

        graph = GRAPH_FAMILIES["ring"](8, 0, None)
        with pytest.raises(UnsupportedFeatureError, match="invariant monitors"):
            run_randomized_mst(
                graph, seed=0, engine="array", monitors=build_monitor_set("all")
            )

    def test_faulty_channel_rejected(self):
        graph = GRAPH_FAMILIES["ring"](8, 0, None)
        with pytest.raises(UnsupportedFeatureError, match="channel"):
            run_randomized_mst(
                graph, seed=0, engine="array", channel=DropChannel(0.1)
            )

    def test_error_message_names_the_fallback(self):
        graph = GRAPH_FAMILIES["ring"](8, 0, None)
        with pytest.raises(UnsupportedFeatureError, match="coroutine"):
            run_randomized_mst(graph, seed=0, engine="array", trace=True)

    def test_unsupported_error_is_catchable_as_simulation_error(self):
        from repro.sim.errors import SimulationError

        assert issubclass(UnsupportedFeatureError, SimulationError)
