"""Unit tests for CONGEST message-size accounting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.congest import (
    CongestPolicy,
    DEFAULT_CONGEST_FACTOR,
    congest_budget_bits,
    payload_bits,
    scalar_bits,
)


class TestScalarBits:
    def test_none_is_cheap(self):
        assert scalar_bits(None) <= 4

    def test_bool_is_cheap(self):
        assert scalar_bits(True) <= 4
        assert scalar_bits(False) <= 4

    def test_int_cost_grows_with_magnitude(self):
        assert scalar_bits(1) < scalar_bits(1000) < scalar_bits(10**9)

    def test_negative_ints_cost_like_positive(self):
        assert scalar_bits(-42) == scalar_bits(42)

    def test_infinity_is_cheap_sentinel(self):
        assert scalar_bits(math.inf) <= 4
        assert scalar_bits(-math.inf) <= 4

    def test_float_costs_64_bits(self):
        assert scalar_bits(3.14) >= 64

    def test_string_costs_per_character(self):
        assert scalar_bits("ab") < scalar_bits("abcdef")

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            scalar_bits([1, 2, 3])

    def test_dict_payload_raises(self):
        with pytest.raises(TypeError):
            payload_bits({"a": 1})


class TestPayloadBits:
    def test_tuple_is_sum_of_fields_plus_overhead(self):
        single = payload_bits((5,))
        double = payload_bits((5, 5))
        assert double > single

    def test_nested_tuples_flatten(self):
        flat = payload_bits((1, 2, 3))
        nested = payload_bits(((1, 2), 3))
        # Nesting adds only tuple overhead.
        assert abs(nested - flat) <= 4

    def test_empty_tuple_is_cheap(self):
        assert payload_bits(()) <= 4

    @given(st.integers(min_value=0, max_value=10**9))
    def test_monotone_in_magnitude(self, value):
        assert payload_bits(value) <= payload_bits(value * 2 + 1)


class TestBudget:
    def test_budget_is_log_of_universe(self):
        assert congest_budget_bits(2**10) == DEFAULT_CONGEST_FACTOR * 11

    def test_budget_rejects_bad_universe(self):
        with pytest.raises(ValueError):
            congest_budget_bits(0)

    def test_budget_scales_with_factor(self):
        assert congest_budget_bits(100, factor=2) * 8 == congest_budget_bits(
            100, factor=16
        )

    def test_constant_field_messages_always_fit(self):
        """The paper's messages (a few IDs/weights/levels) fit the budget."""
        universe = 10**6
        policy = CongestPolicy(universe)
        message = (universe, universe - 1, 1, 0, universe // 2)
        assert not policy.is_over_budget(policy.check(message))

    def test_linear_size_messages_blow_the_budget(self):
        universe = 1000
        policy = CongestPolicy(universe)
        smuggled = tuple(range(universe))
        assert policy.is_over_budget(policy.check(smuggled))

    def test_policy_modes(self):
        strict = CongestPolicy(100, strict=True)
        lenient = CongestPolicy(100, strict=False)
        assert strict.strict and not lenient.strict
        assert strict.budget == lenient.budget
