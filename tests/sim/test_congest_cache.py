"""Property tests: the cached/shape-compiled ``CongestPolicy.check`` agrees
with the naive recursive :func:`repro.sim.congest.payload_bits` reference on
randomized payload trees (nested tuples, ``inf`` sentinels, strings), and
the cache structures behave (bounded, type-exact despite Python's
``1 == True == 1.0`` hashing).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.sim.congest import (
    CACHE_CAPACITY,
    CongestPolicy,
    payload_bits,
    scalar_bits,
)
from repro.sim.errors import CongestViolation

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.sampled_from([math.inf, -math.inf]),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=0, max_size=12
    ),
)

payloads = st.recursive(
    scalars,
    lambda children: st.tuples(children).map(tuple)
    | st.lists(children, min_size=0, max_size=6).map(tuple),
    max_leaves=12,
)


class TestCachedAgreesWithReference:
    @given(payload=payloads)
    @settings(max_examples=300, derandomize=True)
    @example(payload=(1,))
    @example(payload=(True,))
    @example(payload=(1.0,))
    @example(payload=(0, False, 0.0))
    @example(payload=((1,),))
    @example(payload=((True,),))
    @example(payload=("mwoe", 123456, 77, 3))
    @example(payload=("up", 5, math.inf))
    @example(payload=())
    def test_check_equals_payload_bits(self, payload):
        policy = CongestPolicy(10**6, strict=False)
        expected = payload_bits(payload)
        assert policy.check(payload) == expected
        # Second call exercises the memo-hit path.
        assert policy.check(payload) == expected

    @given(batch=st.lists(payloads, min_size=1, max_size=40))
    @settings(max_examples=100, derandomize=True)
    def test_shared_policy_across_interleaved_payloads(self, batch):
        """One policy, many payloads, repeated: warm structures stay exact."""
        policy = CongestPolicy(10**9, strict=False)
        for _ in range(2):
            for payload in batch:
                assert policy.check(payload) == payload_bits(payload)

    def test_hash_equal_but_type_distinct_payloads(self):
        """``(1,) == (True,) == (1.0,)`` in Python, but their bit costs differ.

        This is the trap a naive ``payload -> bits`` memo falls into; the
        per-shape routing must keep them apart in either insertion order.
        """
        for first, second, third in (
            ((1,), (True,), (1.0,)),
            ((True,), (1.0,), (1,)),
            ((1.0,), (1,), (True,)),
            (("a", 1), ("a", True), ("a", 1.0)),
        ):
            policy = CongestPolicy(10**6, strict=False)
            for payload in (first, second, third):
                assert policy.check(payload) == payload_bits(payload), payload

    def test_nested_numeric_collisions_never_cached_wrong(self):
        policy = CongestPolicy(10**6, strict=False)
        assert policy.check(((1,), 2)) == payload_bits(((1,), 2))
        assert policy.check(((True,), 2)) == payload_bits(((True,), 2))
        assert policy.check(((1.0,), 2)) == payload_bits(((1.0,), 2))

    def test_unsupported_payloads_still_raise_type_error(self):
        policy = CongestPolicy(100)
        with pytest.raises(TypeError):
            policy.check([1, 2])
        with pytest.raises(TypeError):
            policy.check(({"a": 1},))

    def test_scalar_payloads_bypass_cache(self):
        policy = CongestPolicy(10**6)
        assert policy.check(12345) == scalar_bits(12345)
        assert policy.check("tag") == scalar_bits("tag")
        assert policy.check(None) == scalar_bits(None)


class TestCacheBehaviour:
    def test_memo_is_bounded(self):
        policy = CongestPolicy(10**9, strict=False)
        for i in range(CACHE_CAPACITY * 2 + 10):
            policy.check(("flood", i))
        assert policy._cache_entries <= CACHE_CAPACITY + 1

    def test_memo_stays_correct_across_eviction(self):
        policy = CongestPolicy(10**9, strict=False)
        probes = [("probe", 2**k) for k in range(0, 40, 5)]
        for payload in probes:
            assert policy.check(payload) == payload_bits(payload)
        for i in range(CACHE_CAPACITY + 5):  # force a clear-and-refill
            policy.check(("flood", i))
        for payload in probes:
            assert policy.check(payload) == payload_bits(payload)

    def test_distinct_policies_have_distinct_caches(self):
        a = CongestPolicy(10**6, strict=False)
        b = CongestPolicy(10**6, strict=False)
        a.check(("x", 1))
        assert b._cache_entries == 0


class TestCheckStrict:
    def test_returns_bits_when_within_budget(self):
        policy = CongestPolicy(10**6)
        payload = ("mwoe", 10**6, 42, 3)
        assert policy.check_strict(payload) == payload_bits(payload)

    def test_raises_in_strict_mode_when_over(self):
        policy = CongestPolicy(100, strict=True)
        oversized = tuple(range(500))
        with pytest.raises(CongestViolation) as excinfo:
            policy.check_strict(oversized, node_id=7, port=2)
        assert excinfo.value.node_id == 7
        assert excinfo.value.port == 2
        assert excinfo.value.bits == payload_bits(oversized)

    def test_lenient_mode_only_measures(self):
        policy = CongestPolicy(100, strict=False)
        oversized = tuple(range(500))
        assert policy.check_strict(oversized) == payload_bits(oversized)

    def test_check_never_raises_on_oversized(self):
        """``check`` measures only — the docstring's contract."""
        policy = CongestPolicy(100, strict=True)
        bits = policy.check(tuple(range(500)))
        assert policy.is_over_budget(bits)
