"""Engine semantics: delivery, loss, accounting, violations, determinism."""

from __future__ import annotations

import pytest

from repro.graphs import path_graph, ring_graph, star_graph
from repro.sim import (
    Awake,
    CongestViolation,
    NodeCrashed,
    ProtocolViolation,
    SimulationLimitExceeded,
    SleepingSimulator,
    simulate,
)


def exchange_ids_protocol(ctx):
    """Everyone awake in round 1; exchange IDs."""
    inbox = yield Awake(1, ctx.broadcast(ctx.node_id))
    return dict(inbox)


class TestDelivery:
    def test_simultaneously_awake_neighbours_hear_each_other(self, small_ring):
        result = simulate(small_ring, exchange_ids_protocol)
        for node in small_ring.node_ids:
            heard = set(result.node_results[node].values())
            assert heard == set(small_ring.neighbors(node))

    def test_message_to_sleeping_node_is_lost(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            if ctx.node_id == 1:
                inbox = yield Awake(1, ctx.broadcast("early"))
            else:
                inbox = yield Awake(2, ctx.broadcast("late"))
            return dict(inbox)

        result = simulate(graph, protocol)
        assert result.node_results[1] == {}
        assert result.node_results[2] == {}
        assert result.metrics.messages_lost == 2
        assert result.metrics.messages_delivered == 0

    def test_listen_only_round_receives(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            if ctx.node_id == 1:
                inbox = yield Awake(3, ctx.broadcast("hello"))
            else:
                inbox = yield Awake(3)  # awake, silent
            return dict(inbox)

        result = simulate(graph, protocol)
        assert list(result.node_results[2].values()) == ["hello"]

    def test_distinct_messages_per_port(self, small_star):
        hub = small_star.node_ids[0] if small_star.degree(small_star.node_ids[0]) > 1 else None
        # Identify the hub: the unique node with degree n-1.
        hub = next(
            node
            for node in small_star.node_ids
            if small_star.degree(node) == small_star.n - 1
        )

        def protocol(ctx):
            if ctx.node_id == hub:
                sends = {port: ("to", port) for port in ctx.ports}
                yield Awake(1, sends)
                return None
            inbox = yield Awake(1)
            return list(inbox.values())

        result = simulate(small_star, protocol)
        for node in small_star.node_ids:
            if node == hub:
                continue
            (message,) = result.node_results[node]
            assert message[0] == "to"

    def test_full_duplex_on_one_edge(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            inbox = yield Awake(1, ctx.broadcast(ctx.node_id * 100))
            return dict(inbox)

        result = simulate(graph, protocol)
        assert list(result.node_results[1].values()) == [200]
        assert list(result.node_results[2].values()) == [100]


class TestAccounting:
    def test_awake_rounds_counted_per_yield(self, small_ring):
        def protocol(ctx):
            yield Awake(1)
            yield Awake(5)
            yield Awake(100)
            return None

        result = simulate(small_ring, protocol)
        assert result.metrics.max_awake == 3
        assert result.metrics.rounds == 100
        assert result.metrics.mean_awake == 3.0

    def test_rounds_is_last_executed_round(self):
        graph = path_graph(3, seed=0)

        def protocol(ctx):
            yield Awake(ctx.node_id * 10)
            return None

        result = simulate(graph, protocol)
        assert result.metrics.rounds == 30

    def test_sparse_execution_handles_huge_round_numbers(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(10**12)
            return None

        result = simulate(graph, protocol)
        assert result.metrics.rounds == 10**12
        assert result.metrics.max_awake == 1

    def test_awake_round_product(self, small_ring):
        def protocol(ctx):
            yield Awake(7)
            return None

        result = simulate(small_ring, protocol)
        assert result.metrics.awake_round_product == 7

    def test_bits_accounted(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(1, ctx.broadcast(12345))
            return None

        result = simulate(graph, protocol)
        assert result.metrics.total_bits > 0
        assert result.metrics.max_message_bits > 0

    def test_terminated_round_recorded(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(4)
            return "done"

        result = simulate(graph, protocol)
        for node in graph.node_ids:
            assert result.metrics.per_node[node].terminated_round == 4


class TestViolations:
    def test_past_round_rejected(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(5)
            yield Awake(5)  # not strictly later
            return None

        with pytest.raises(ProtocolViolation):
            simulate(graph, protocol)

    def test_round_zero_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Awake(0)

    def test_unknown_port_rejected(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(1, {99: "boom"})
            return None

        with pytest.raises(ProtocolViolation):
            simulate(graph, protocol)

    def test_non_awake_yield_rejected(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield "not an action"
            return None

        with pytest.raises(ProtocolViolation):
            simulate(graph, protocol)

    def test_node_exception_wrapped(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(1)
            raise RuntimeError("algorithm bug")

        with pytest.raises(NodeCrashed) as excinfo:
            simulate(graph, protocol)
        assert "algorithm bug" in repr(excinfo.value.__cause__)

    def test_oversized_message_strict(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(1, ctx.broadcast(tuple(range(500))))
            return None

        with pytest.raises(CongestViolation):
            simulate(graph, protocol)

    def test_oversized_message_lenient_counts(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(1, ctx.broadcast(tuple(range(500))))
            return None

        result = simulate(graph, protocol, strict_congest=False)
        assert result.metrics.congest_violations == 2

    def test_max_rounds_limit(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            yield Awake(10**6)
            return None

        with pytest.raises(SimulationLimitExceeded):
            simulate(graph, protocol, max_rounds=1000)

    def test_runaway_protocol_hits_event_limit(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            round_number = 0
            while True:
                round_number += 1
                yield Awake(round_number)

        with pytest.raises(SimulationLimitExceeded):
            simulate(graph, protocol, max_awake_events=100)


class TestDeterminism:
    def test_same_seed_same_execution(self, small_random_graph):
        def protocol(ctx):
            inbox = yield Awake(1, ctx.broadcast(ctx.rng.randrange(1000)))
            return sorted(inbox.values())

        first = simulate(small_random_graph, protocol, seed=42)
        second = simulate(small_random_graph, protocol, seed=42)
        assert first.node_results == second.node_results

    def test_different_seed_different_randomness(self, small_random_graph):
        def protocol(ctx):
            yield Awake(1)
            return ctx.rng.randrange(10**9)

        first = simulate(small_random_graph, protocol, seed=1)
        second = simulate(small_random_graph, protocol, seed=2)
        assert first.node_results != second.node_results

    def test_immediate_return_without_waking(self):
        graph = path_graph(2, seed=0)

        def protocol(ctx):
            return ctx.node_id
            yield  # pragma: no cover - makes this a generator

        result = simulate(graph, protocol)
        assert result.node_results == {1: 1, 2: 2}
        assert result.metrics.max_awake == 0


class TestObservers:
    def test_trace_records_wakes_and_sends(self, small_ring):
        result = simulate(small_ring, exchange_ids_protocol, trace=True)
        wakes = result.trace.of_kind("wake")
        assert len(wakes) == small_ring.n
        assert len(result.trace.of_kind("send")) == 2 * small_ring.m

    def test_knowledge_grows_by_neighbourhood(self, small_ring):
        result = simulate(
            small_ring, exchange_ids_protocol, track_knowledge=True
        )
        for node in small_ring.node_ids:
            known = result.knowledge.known_nodes(node)
            assert known == {node} | set(small_ring.neighbors(node))

    def test_knowledge_snapshot_excludes_same_round_receipts(self):
        """A message carries the sender's *pre-round* knowledge."""
        graph = path_graph(3, seed=0)

        def protocol(ctx):
            yield Awake(1, ctx.broadcast(ctx.node_id))
            yield Awake(2, ctx.broadcast(ctx.node_id))
            return None

        result = simulate(graph, protocol, track_knowledge=True)
        # Node 3 hears node 2 twice.  Node 2 learned about node 1 in round 1,
        # so its round-2 message carries node 1: node 3 ends knowing all.
        assert result.knowledge.known_nodes(3) == {1, 2, 3}
        # But after only its first awake round, node 3 knew just {2, 3}.
        curve = result.knowledge.growth_curve(3)
        assert curve[1] == (1, 2)
