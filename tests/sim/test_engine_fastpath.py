"""Regression tests for the specialized engine loops.

Covers the hot-path PR's invariants:

* ``metrics.rounds`` is assigned once, from the final populated round, and
  equals the last node's termination round on staggered wake-up schedules;
* the engine maintains ``Metrics.max_awake_running`` incrementally and it
  always equals the O(n) recomputation;
* the observer-free fast path and the general (trace/knowledge/observe)
  path produce byte-identical results and metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.graphs import path_graph, random_connected_graph, ring_graph
from repro.sim import Awake, simulate


def staggered_protocol(ctx):
    """Node v wakes ``v`` times, last at round ``10 * v``: fully staggered."""
    node_id = ctx.node_id
    for i in range(1, node_id + 1):
        yield Awake(10 * i if i < node_id else 10 * node_id,
                    {port: ("s", node_id) for port in ctx.ports})
    return node_id


def chatter_protocol(ctx):
    """Dense rounds with deliveries, losses, and staggered termination."""
    node_id = ctx.node_id
    total = 0
    for i in range(1, 6 + node_id % 3):
        inbox = yield Awake(2 * i + node_id % 2, ctx.broadcast(("c", node_id, i)))
        total += len(inbox)
    return total


class TestRoundsAssignment:
    def test_rounds_equals_last_termination_round_staggered(self):
        graph = path_graph(5, seed=0)
        result = simulate(graph, staggered_protocol)
        last_termination = max(
            node.terminated_round for node in result.metrics.per_node.values()
        )
        assert result.metrics.rounds == last_termination
        assert result.metrics.rounds == 10 * max(graph.node_ids)

    def test_rounds_zero_when_everyone_returns_immediately(self):
        def protocol(ctx):
            return ctx.node_id
            yield  # pragma: no cover - generator marker

        result = simulate(path_graph(3, seed=0), protocol)
        assert result.metrics.rounds == 0

    def test_rounds_identical_with_and_without_observers(self):
        graph = ring_graph(8, seed=2)
        plain = simulate(graph, chatter_protocol)
        traced = simulate(graph, chatter_protocol, trace=True)
        assert plain.metrics.rounds == traced.metrics.rounds


class TestRunningMaxAwake:
    @pytest.mark.parametrize("observers", [{}, {"trace": True}, {"observe": True}])
    def test_running_max_equals_recompute(self, observers):
        graph = random_connected_graph(24, seed=5)
        result = simulate(graph, chatter_protocol, seed=1, **observers)
        metrics = result.metrics
        assert metrics.max_awake_running == metrics.recompute_max_awake()
        assert metrics.max_awake == metrics.recompute_max_awake()

    def test_running_max_on_staggered_schedule(self):
        result = simulate(path_graph(6, seed=0), staggered_protocol)
        assert result.metrics.max_awake == 6
        assert result.metrics.max_awake == result.metrics.recompute_max_awake()

    def test_hand_built_metrics_fall_back_to_recompute(self):
        from repro.sim import Metrics

        metrics = Metrics()
        metrics.node(1).awake_rounds = 9
        assert metrics.max_awake_running == 0
        assert metrics.max_awake == 9


class TestFastGeneralEquivalence:
    """The two loop specializations must be observationally identical."""

    @pytest.mark.parametrize(
        "observers",
        [
            {"trace": True},
            {"observe": True},
            {"track_knowledge": True},
            {"trace": True, "observe": True, "track_knowledge": True},
        ],
    )
    def test_summaries_byte_identical(self, observers):
        graph = random_connected_graph(20, seed=3)
        fast = simulate(graph, chatter_protocol, seed=4)
        general = simulate(graph, chatter_protocol, seed=4, **observers)
        assert json.dumps(fast.metrics.summary(), sort_keys=True) == json.dumps(
            general.metrics.summary(), sort_keys=True
        )
        assert fast.node_results == general.node_results
        assert {
            node: stats.as_dict() for node, stats in fast.metrics.per_node.items()
        } == {
            node: stats.as_dict()
            for node, stats in general.metrics.per_node.items()
        }

    def test_lenient_congest_violations_counted_identically(self):
        def oversized(ctx):
            yield Awake(1, ctx.broadcast(tuple(range(300))))
            return None

        graph = path_graph(2, seed=0)
        fast = simulate(graph, oversized, strict_congest=False)
        general = simulate(graph, oversized, strict_congest=False, trace=True)
        assert (
            fast.metrics.congest_violations
            == general.metrics.congest_violations
            == 2
        )

    def test_mst_run_identical_across_paths(self):
        from repro.core import run_randomized_mst

        graph = random_connected_graph(32, seed=9)
        fast = run_randomized_mst(graph, seed=2)
        general = run_randomized_mst(graph, seed=2, observe=True, trace=True)
        assert fast.mst_weights == general.mst_weights
        assert fast.metrics.summary() == general.metrics.summary()
