"""Property-based tests of the engine's scheduling semantics.

Hypothesis generates random wake schedules and the tests assert the
sleeping model's defining delivery rule directly: a message sent in round
``r`` arrives iff the receiver is awake in round ``r`` — for arbitrary
schedules, not just the algorithms' aligned ones.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import path_graph, ring_graph
from repro.sim import Awake, simulate

schedules = st.lists(
    st.integers(min_value=1, max_value=40), min_size=1, max_size=6, unique=True
).map(sorted)


@given(schedule_a=schedules, schedule_b=schedules)
def test_delivery_iff_both_awake(schedule_a, schedule_b):
    """On a 2-node path, node 1 broadcasts in every awake round; node 2
    must receive exactly in the intersection of the schedules."""
    graph = path_graph(2, seed=0)

    def protocol(ctx):
        rounds = schedule_a if ctx.node_id == 1 else schedule_b
        received = []
        for round_number in rounds:
            sends = ctx.broadcast(("at", round_number)) if ctx.node_id == 1 else {}
            inbox = yield Awake(round_number, sends)
            if ctx.node_id == 2 and inbox:
                received.append(inbox[0][1])
        return received

    result = simulate(graph, protocol)
    expected = sorted(set(schedule_a) & set(schedule_b))
    assert result.node_results[2] == expected


@given(schedule=schedules)
def test_awake_counts_equal_schedule_length(schedule):
    graph = path_graph(2, seed=0)

    def protocol(ctx):
        for round_number in schedule:
            yield Awake(round_number)
        return None

    result = simulate(graph, protocol)
    for node in graph.node_ids:
        assert result.metrics.per_node[node].awake_rounds == len(schedule)
    assert result.metrics.rounds == schedule[-1]


@given(
    offsets=st.lists(
        st.integers(min_value=0, max_value=3), min_size=6, max_size=6
    )
)
def test_lost_plus_delivered_equals_sent(offsets):
    """Conservation: every sent message is either delivered or lost."""
    graph = ring_graph(6, seed=1)
    ids = sorted(graph.node_ids)
    offset_of = dict(zip(ids, offsets))

    def protocol(ctx):
        yield Awake(1 + offset_of[ctx.node_id], ctx.broadcast("x"))
        return None

    result = simulate(graph, protocol)
    sent = sum(node.messages_sent for node in result.metrics.per_node.values())
    assert sent == 2 * graph.m
    assert (
        result.metrics.messages_delivered + result.metrics.messages_lost
        == sent
    )


@given(seed=st.integers(min_value=0, max_value=10**6))
def test_knowledge_never_shrinks_and_caps_at_n(seed):
    graph = ring_graph(7, seed=2)

    def protocol(ctx):
        for round_number in (1, 2, 3):
            yield Awake(round_number, ctx.broadcast(ctx.node_id))
        return None

    result = simulate(graph, protocol, seed=seed, track_knowledge=True)
    for node in graph.node_ids:
        curve = result.knowledge.growth_curve(node)
        sizes = [size for _, size in curve]
        assert sizes == sorted(sizes)
        assert sizes[-1] <= graph.n
        # Three aligned exchanges on a ring: knowledge radius 3.
        assert sizes[-1] == 7
