"""Metrics aggregation unit tests."""

from __future__ import annotations

from repro.sim import Metrics


class TestMetrics:
    def test_empty_metrics(self):
        metrics = Metrics()
        assert metrics.max_awake == 0
        assert metrics.mean_awake == 0.0
        assert metrics.awake_round_product == 0

    def test_node_counters_autocreate(self):
        metrics = Metrics()
        metrics.node(7).awake_rounds = 3
        assert metrics.per_node[7].awake_rounds == 3

    def test_max_and_mean_awake(self):
        metrics = Metrics()
        metrics.node(1).awake_rounds = 2
        metrics.node(2).awake_rounds = 8
        metrics.total_awake_rounds = 10
        assert metrics.max_awake == 8
        assert metrics.mean_awake == 5.0

    def test_awake_round_product(self):
        metrics = Metrics()
        metrics.rounds = 100
        metrics.node(1).awake_rounds = 4
        assert metrics.awake_round_product == 400

    def test_awake_distribution_sorted(self):
        metrics = Metrics()
        for node, awake in ((1, 5), (2, 1), (3, 3)):
            metrics.node(node).awake_rounds = awake
        assert metrics.awake_distribution() == [1, 3, 5]

    def test_summary_keys(self):
        summary = Metrics().summary()
        for key in ("rounds", "max_awake", "awake_round_product", "messages_lost"):
            assert key in summary

    def test_node_metrics_as_dict(self):
        metrics = Metrics()
        node = metrics.node(1)
        node.messages_sent = 4
        payload = node.as_dict()
        assert payload["messages_sent"] == 4
        assert set(payload) >= {"awake_rounds", "bits_sent", "terminated_round"}
