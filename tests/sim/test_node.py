"""Node-side API: Awake, NodeContext, protocol stepping helpers."""

from __future__ import annotations

from random import Random

import pytest

from repro.sim.node import (
    Awake,
    NodeContext,
    prime_protocol,
    run_protocol_step,
)


def make_context(**overrides):
    defaults = dict(
        node_id=3,
        n=5,
        max_id=5,
        ports=(0, 1, 2),
        port_weights={0: 10, 1: 7, 2: 22},
        rng=Random(0),
    )
    defaults.update(overrides)
    return NodeContext(**defaults)


class TestAwake:
    def test_defaults_to_silent(self):
        action = Awake(4)
        assert dict(action.sends) == {}

    def test_rejects_round_below_one(self):
        with pytest.raises(ValueError):
            Awake(0)
        with pytest.raises(ValueError):
            Awake(-3)

    def test_carries_sends(self):
        action = Awake(2, {0: "x", 1: "y"})
        assert action.sends[0] == "x"


class TestNodeContext:
    def test_degree(self):
        assert make_context().degree == 3

    def test_min_weight_port(self):
        assert make_context().min_weight_port() == 1

    def test_broadcast_addresses_every_port(self):
        sends = make_context().broadcast("msg")
        assert sends == {0: "msg", 1: "msg", 2: "msg"}


class TestProtocolStepping:
    def test_prime_returns_first_action(self):
        def protocol():
            inbox = yield Awake(1)
            return inbox

        generator = protocol()
        finished, action = prime_protocol(generator)
        assert not finished
        assert action.round == 1

    def test_step_delivers_inbox_and_finishes(self):
        def protocol():
            inbox = yield Awake(1)
            return sorted(inbox)

        generator = protocol()
        prime_protocol(generator)
        finished, value = run_protocol_step(generator, {1: "a", 0: "b"})
        assert finished
        assert value == [0, 1]

    def test_immediate_return(self):
        def protocol():
            return "early"
            yield  # pragma: no cover

        finished, value = prime_protocol(protocol())
        assert finished and value == "early"
