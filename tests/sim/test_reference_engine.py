"""Differential testing: sparse engine ≡ naive round-by-round engine.

Random protocols (hypothesis-generated schedules and payloads) run under
both :class:`repro.sim.SleepingSimulator` and the deliberately naive
:func:`repro.sim.reference.simulate_dense`; every observable — results,
total rounds, per-node awake counts, delivered/lost message counts — must
match exactly.  The real algorithms are cross-checked too.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core import randomized_mst_protocol
from repro.graphs import path_graph, random_connected_graph, ring_graph
from repro.sim import Awake, simulate
from repro.sim.reference import simulate_dense


def compare(graph, factory, seed=0):
    sparse = simulate(graph, factory, seed=seed)
    dense = simulate_dense(graph, factory, seed=seed)
    assert sparse.node_results == dense.node_results
    assert sparse.metrics.rounds == dense.rounds
    for node in graph.node_ids:
        assert (
            sparse.metrics.per_node[node].awake_rounds
            == dense.awake_rounds[node]
        )
    assert sparse.metrics.messages_delivered == dense.messages_delivered
    assert sparse.metrics.messages_lost == dense.messages_lost


schedule_lists = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=25), min_size=1, max_size=5, unique=True
    ).map(sorted),
    min_size=6,
    max_size=6,
)


@given(schedules=schedule_lists)
def test_random_schedules_agree(schedules):
    graph = ring_graph(6, seed=3)
    by_node = dict(zip(sorted(graph.node_ids), schedules))

    def factory(ctx):
        def protocol():
            heard = []
            for round_number in by_node[ctx.node_id]:
                inbox = yield Awake(
                    round_number, ctx.broadcast((ctx.node_id, round_number))
                )
                heard.extend(sorted(inbox.items()))
            return heard

        return protocol()

    compare(graph, factory)


@given(seed=st.integers(min_value=0, max_value=10**6))
def test_randomness_agrees(seed):
    """Both engines derive identical per-node RNGs from the seed."""
    graph = path_graph(4, seed=1)

    def factory(ctx):
        def protocol():
            inbox = yield Awake(
                1 + ctx.rng.randrange(3), ctx.broadcast(ctx.rng.randrange(100))
            )
            return sorted(inbox.values())

        return protocol()

    compare(graph, factory, seed=seed)


def test_full_mst_run_agrees():
    """The flagship algorithm itself, under both engines."""
    graph = random_connected_graph(12, 0.25, seed=5)
    compare(graph, randomized_mst_protocol, seed=2)


def test_mst_on_ring_agrees():
    graph = ring_graph(10, seed=6)
    compare(graph, randomized_mst_protocol, seed=1)
