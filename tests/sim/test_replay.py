"""Trace serialization round-trips."""

from __future__ import annotations

import pytest

from repro.core import run_randomized_mst
from repro.graphs import path_graph, ring_graph
from repro.sim import Awake, load_trace, save_trace, simulate


class TestRoundTrip:
    def test_events_survive(self, tmp_path):
        graph = path_graph(3, seed=1)

        def protocol(ctx):
            inbox = yield Awake(1, ctx.broadcast(("tag", ctx.node_id)))
            return len(inbox)

        result = simulate(graph, protocol, trace=True)
        target = tmp_path / "run.jsonl"
        written = save_trace(result, target)
        loaded = load_trace(target)
        assert written == len(loaded.trace) == len(result.trace)
        original = [(e.round, e.kind, e.node, e.peer, e.detail) for e in result.trace]
        restored = [(e.round, e.kind, e.node, e.peer, e.detail) for e in loaded.trace]
        assert original == restored  # tuples restored from JSON lists

    def test_metrics_summary_saved(self, tmp_path):
        graph = ring_graph(6, seed=2)
        result = run_randomized_mst(graph, seed=0, trace=True)
        target = tmp_path / "mst.jsonl"
        save_trace(result.simulation, target)
        loaded = load_trace(target)
        assert loaded.metrics_summary["rounds"] == result.metrics.rounds
        assert loaded.metrics_summary["max_awake"] == result.metrics.max_awake

    def test_untraced_run_rejected(self, tmp_path):
        graph = path_graph(2, seed=3)

        def protocol(ctx):
            yield Awake(1)
            return None

        result = simulate(graph, protocol)
        with pytest.raises(ValueError, match="trace=True"):
            save_trace(result, tmp_path / "x.jsonl")

    def test_corrupt_header_rejected(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text('{"format": 99, "events": 0, "metrics": {}}\n')
        with pytest.raises(ValueError, match="unsupported format"):
            load_trace(target)

    def test_truncated_file_rejected(self, tmp_path):
        target = tmp_path / "short.jsonl"
        target.write_text('{"format": 1, "events": 5, "metrics": {}}\n')
        with pytest.raises(ValueError, match="promises 5 events"):
            load_trace(target)

    def test_empty_file_rejected(self, tmp_path):
        target = tmp_path / "empty.jsonl"
        target.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(target)


class TestFaultHeaderV2:
    @staticmethod
    def chatty(rounds=50):
        """A protocol that keeps transmitting so faults have targets."""

        def protocol(ctx):
            for r in range(1, rounds):
                yield Awake(r, ctx.broadcast(("ping", r)))
            return None

        return protocol

    def test_fault_counters_round_trip(self, tmp_path):
        from repro.orchestrator import channel_from_spec

        graph = ring_graph(8, seed=2)
        result = simulate(
            graph, self.chatty(), trace=True,
            channel=channel_from_spec("drop:0.2"),
        )
        target = tmp_path / "faulted.jsonl"
        save_trace(result, target)
        loaded = load_trace(target)
        assert loaded.format_version == 2
        assert loaded.fault_summary == result.metrics.fault_summary()
        assert loaded.fault_summary["messages_dropped"] > 0
        assert loaded.faults_observed

    def test_crashed_nodes_restore_int_keys(self, tmp_path):
        from repro.sim import CrashSchedule

        graph = ring_graph(8, seed=2)
        result = simulate(
            graph, self.chatty(), trace=True,
            channel=CrashSchedule.random(1, 30),
        )
        target = tmp_path / "crashed.jsonl"
        save_trace(result, target)
        loaded = load_trace(target)
        assert loaded.crashed_nodes == result.metrics.crashed_nodes
        assert loaded.crashed_nodes
        assert all(isinstance(node, int) for node in loaded.crashed_nodes)
        assert loaded.faults_observed

    def test_clean_run_records_zero_faults(self, tmp_path):
        graph = ring_graph(6, seed=2)
        result = run_randomized_mst(graph, seed=0, trace=True)
        target = tmp_path / "clean.jsonl"
        save_trace(result.simulation, target)
        loaded = load_trace(target)
        assert loaded.format_version == 2
        assert not loaded.faults_observed
        assert loaded.crashed_nodes == {}

    def test_v1_file_loads_with_empty_fault_data(self, tmp_path):
        target = tmp_path / "v1.jsonl"
        target.write_text('{"format": 1, "events": 0, "metrics": {}}\n')
        loaded = load_trace(target)
        assert loaded.format_version == 1
        assert loaded.fault_summary == {}
        assert loaded.crashed_nodes == {}
        assert not loaded.faults_observed
