"""EventTrace and KnowledgeTracker unit tests."""

from __future__ import annotations

import pytest

from repro.sim import EventTrace, KnowledgeTracker


class TestEventTrace:
    def test_record_and_filter(self):
        trace = EventTrace()
        trace.record(1, "wake", 5)
        trace.record(1, "send", 5, peer=6, detail="msg")
        trace.record(2, "wake", 6)
        assert len(trace) == 3
        assert [e.node for e in trace.of_kind("wake")] == [5, 6]
        assert trace.for_node(5)[1].detail == "msg"

    def test_wake_rounds_ordered(self):
        trace = EventTrace()
        for round_number in (3, 9, 27):
            trace.record(round_number, "wake", 1)
        assert trace.wake_rounds(1) == [3, 9, 27]

    def test_iteration(self):
        trace = EventTrace()
        trace.record(1, "wake", 1)
        assert [event.kind for event in trace] == ["wake"]


class TestEventTraceRingBuffer:
    def test_unbounded_by_default(self):
        trace = EventTrace()
        for round_number in range(100):
            trace.record(round_number, "wake", 0)
        assert len(trace) == 100
        assert trace.dropped == 0

    def test_cap_keeps_newest_and_counts_dropped(self):
        trace = EventTrace(max_events=3)
        for round_number in range(10):
            trace.record(round_number, "wake", 0)
        assert len(trace) == 3
        assert trace.dropped == 7
        assert [event.round for event in trace] == [7, 8, 9]

    def test_cap_not_reached_drops_nothing(self):
        trace = EventTrace(max_events=5)
        trace.record(1, "wake", 0)
        assert len(trace) == 1
        assert trace.dropped == 0

    def test_zero_cap_records_nothing(self):
        trace = EventTrace(max_events=0)
        trace.record(1, "wake", 0)
        trace.record(2, "send", 0, peer=1)
        assert len(trace) == 0
        assert trace.dropped == 2
        assert trace.events == []

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            EventTrace(max_events=-1)

    def test_filters_respect_the_window(self):
        trace = EventTrace(max_events=2)
        trace.record(1, "wake", 5)
        trace.record(2, "send", 5, peer=6)
        trace.record(3, "wake", 5)
        assert [event.kind for event in trace.for_node(5)] == ["send", "wake"]
        assert trace.wake_rounds(5) == [3]


class TestKnowledgeTracker:
    def test_initial_knowledge_is_self(self):
        tracker = KnowledgeTracker([10, 20, 30])
        assert tracker.known_nodes(10) == {10}
        assert tracker.size(20) == 1

    def test_absorb_merges_masks(self):
        tracker = KnowledgeTracker([1, 2, 3])
        mask_of_2 = tracker.snapshot(2)
        tracker.absorb(1, [mask_of_2])
        assert tracker.known_nodes(1) == {1, 2}

    def test_transitive_knowledge_via_snapshots(self):
        tracker = KnowledgeTracker([1, 2, 3])
        tracker.absorb(2, [tracker.snapshot(3)])
        # Now 2 knows {2,3}; its snapshot carries both to 1.
        tracker.absorb(1, [tracker.snapshot(2)])
        assert tracker.known_nodes(1) == {1, 2, 3}

    def test_growth_curve_records_awake_counts(self):
        tracker = KnowledgeTracker([1, 2])
        tracker.absorb(1, [tracker.snapshot(2)])
        tracker.note_awake(1)
        curve = tracker.growth_curve(1)
        assert curve == [(0, 1), (1, 2)]

    def test_max_knowledge_after(self):
        tracker = KnowledgeTracker([1, 2, 3, 4])
        tracker.absorb(1, [tracker.snapshot(2), tracker.snapshot(3)])
        tracker.note_awake(1)
        tracker.note_awake(2)
        assert tracker.max_knowledge_after(0) == 1
        assert tracker.max_knowledge_after(1) == 3
        # Counts beyond observed: knowledge only grows, so still 3.
        assert tracker.max_knowledge_after(10) == 3
