"""Transport-layer tests: channel models, fault injection, byte-identity.

The acceptance criteria of the transport refactor:

* the default :class:`PerfectChannel` is byte-identical to the
  pre-refactor engine (golden metrics + trace pinned below);
* a seeded fault run is deterministic across repeats;
* injected faults surface in metrics, the obs registry dump, and the
  Chrome trace export;
* message conservation holds under every channel:
  ``delivered + lost + dropped == sent + duplicated``.
"""

from __future__ import annotations

import json
from random import Random

import pytest

from repro.graphs import path_graph, random_connected_graph, ring_graph
from repro.sim import (
    Awake,
    CompositeChannel,
    CrashSchedule,
    DelayChannel,
    DropChannel,
    DuplicateChannel,
    NodeCrashed,
    Outcome,
    PerfectChannel,
    parse_channel_spec,
    simulate,
    validate_channel_spec,
)
from repro.sim.transport import DELIVERED, DROPPED, LOST


def chatter_protocol(ctx):
    """Loss-tolerant chatter: reads its inbox but never requires it."""
    node_id = ctx.node_id
    total = 0
    for i in range(1, 6 + node_id % 3):
        inbox = yield Awake(2 * i + node_id % 2, ctx.broadcast(("c", node_id, i)))
        total += len(inbox)
    return total


def dense_protocol(ctx):
    """Everybody awake every round for a while: maximal channel traffic."""
    node_id = ctx.node_id
    received = 0
    for i in range(1, 12):
        inbox = yield Awake(i, ctx.broadcast(("d", node_id, i)))
        received += len(inbox)
    return received


# ----------------------------------------------------------------------
# Golden byte-identity: the PerfectChannel default vs the pre-transport
# engine.  These constants were captured from the engine at commit
# 90056c2, immediately before the transport layer landed.
# ----------------------------------------------------------------------

GOLDEN_RANDOMIZED_N32 = {
    "awake_round_product": 1010669,
    "congest_violations": 0,
    "max_awake": 139,
    "max_message_bits": 26,
    "mean_awake": 103.0,
    "messages_delivered": 7480,
    "messages_lost": 0,
    "rounds": 7271,
    "total_bits": 122981,
}

GOLDEN_DETERMINISTIC_N16 = {
    "awake_round_product": 740175,
    "congest_violations": 0,
    "max_awake": 75,
    "max_message_bits": 67,
    "mean_awake": 61.5,
    "messages_delivered": 886,
    "messages_lost": 0,
    "rounds": 9869,
    "total_bits": 11660,
}

GOLDEN_TRACE_EVENTS = 18288
GOLDEN_TRACE_KINDS = ["deliver", "send", "terminate", "wake"]
GOLDEN_MST_EDGES = 31
GOLDEN_MST_FIRST_WEIGHTS = [6, 22, 26, 35, 57, 64, 70, 76]


class TestGoldenByteIdentity:
    def test_randomized_mst_summary_unchanged(self):
        from repro.core import run_randomized_mst

        result = run_randomized_mst(random_connected_graph(32, seed=9), seed=2)
        assert result.metrics.summary() == GOLDEN_RANDOMIZED_N32
        assert len(result.mst_weights) == GOLDEN_MST_EDGES
        assert sorted(result.mst_weights)[:8] == GOLDEN_MST_FIRST_WEIGHTS

    def test_deterministic_mst_summary_unchanged(self):
        from repro.core import run_deterministic_mst

        result = run_deterministic_mst(ring_graph(16, seed=3))
        assert result.metrics.summary() == GOLDEN_DETERMINISTIC_N16

    def test_traced_run_unchanged(self):
        from repro.core import run_randomized_mst

        result = run_randomized_mst(
            random_connected_graph(32, seed=9), seed=2, trace=True
        )
        trace = result.simulation.trace
        assert len(trace.events) == GOLDEN_TRACE_EVENTS
        assert sorted({event.kind for event in trace.events}) == GOLDEN_TRACE_KINDS
        assert result.metrics.summary() == GOLDEN_RANDOMIZED_N32

    def test_explicit_perfect_channel_matches_default(self):
        graph = random_connected_graph(20, seed=3)
        default = simulate(graph, chatter_protocol, seed=4)
        explicit = simulate(graph, chatter_protocol, seed=4, channel=PerfectChannel())
        assert default.metrics.summary() == explicit.metrics.summary()
        assert default.node_results == explicit.node_results

    def test_fault_free_summary_has_no_fault_keys(self):
        result = simulate(ring_graph(6, seed=0), chatter_protocol)
        assert "messages_dropped" not in result.metrics.summary()
        assert not result.metrics.faults_observed


# ----------------------------------------------------------------------
# Channel-model unit behaviour
# ----------------------------------------------------------------------

class TestChannelModels:
    def test_perfect_channel_applies_sleeping_policy(self):
        channel = PerfectChannel()
        assert channel.deliver(1, 1, 0, "x", 4, True) is DELIVERED
        assert channel.deliver(1, 1, 0, "x", 4, False) is LOST
        assert channel.is_perfect

    def test_drop_channel_is_seeded_and_bounded(self):
        channel = DropChannel(0.5, rng=Random(7))
        outcomes = [
            channel.deliver(1, 1, 0, "x", 4, True).kind for _ in range(64)
        ]
        assert set(outcomes) == {"deliver", "drop"}
        repeat = DropChannel(0.5, rng=Random(7))
        assert outcomes == [
            repeat.deliver(1, 1, 0, "x", 4, True).kind for _ in range(64)
        ]

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_drop_probability_validated(self, bad):
        with pytest.raises(ValueError):
            DropChannel(bad)

    def test_delay_channel_schedules_future_round(self):
        channel = DelayChannel(3, rng=Random(1))
        kinds = set()
        for _ in range(64):
            outcome = channel.deliver(10, 1, 0, "x", 4, True)
            kinds.add(outcome.kind)
            if outcome.kind == "delay":
                assert 11 <= outcome.deliver_round <= 13
        assert kinds == {"deliver", "delay"}
        assert DelayChannel(0).deliver(5, 1, 0, "x", 4, False) is LOST

    def test_duplicate_channel_tags_duplicate_round(self):
        channel = DuplicateChannel(1.0, lag=2)
        channel.reset([1, 2], Random(0))
        outcome = channel.deliver(7, 1, 0, "x", 4, True)
        assert outcome.kind == "deliver"
        assert outcome.duplicate_round == 9

    def test_crash_schedule_explicit_plan(self):
        channel = CrashSchedule({3: 10, 5: 20})
        channel.reset([1, 3, 5], Random(0))
        assert channel.crash_round(3) == 10
        assert channel.crash_round(5) == 20
        assert channel.crash_round(1) is None

    def test_crash_schedule_random_victims_deterministic(self):
        first = CrashSchedule.random(2, 50)
        first.reset(list(range(1, 11)), Random("seed/transport"))
        second = CrashSchedule.random(2, 50)
        second.reset(list(range(1, 11)), Random("seed/transport"))
        assert first.plan == second.plan
        assert len(first.plan) == 2
        assert all(round_number == 50 for round_number in first.plan.values())

    def test_composite_first_fault_wins_and_crashes_merge(self):
        composite = CompositeChannel(
            [DropChannel(1.0), DelayChannel(3), CrashSchedule({2: 5})]
        )
        composite.reset([1, 2], Random(0))
        assert composite.deliver(1, 1, 0, "x", 4, True) is DROPPED
        assert composite.crash_round(2) == 5
        assert composite.crash_round(1) is None

    def test_outcome_is_frozen(self):
        outcome = Outcome("deliver")
        with pytest.raises(Exception):
            outcome.kind = "drop"


class TestChannelSpecs:
    @pytest.mark.parametrize("spec", [None, "", "perfect", " perfect "])
    def test_perfect_spellings(self, spec):
        assert parse_channel_spec(spec).is_perfect
        assert validate_channel_spec(spec) is None

    def test_each_kind_parses(self):
        assert isinstance(parse_channel_spec("drop:0.05"), DropChannel)
        assert isinstance(parse_channel_spec("delay:3"), DelayChannel)
        assert isinstance(parse_channel_spec("dup:0.1"), DuplicateChannel)
        assert isinstance(parse_channel_spec("crash:2@50"), CrashSchedule)
        assert isinstance(
            parse_channel_spec("drop:0.01+crash:1@40"), CompositeChannel
        )

    def test_describe_round_trips(self):
        for spec in ("drop:0.05", "delay:3", "dup:0.1", "crash:2@50"):
            assert parse_channel_spec(spec).describe() == spec

    @pytest.mark.parametrize(
        "spec", ["bogus:1", "drop:2", "delay:-1", "crash:2", "dup:-0.5"]
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_channel_spec(spec)


# ----------------------------------------------------------------------
# Engine integration: faults in metrics, obs dump, and Chrome trace
# ----------------------------------------------------------------------

class TestFaultInjection:
    def test_seeded_drop_run_deterministic_and_counted(self):
        graph = random_connected_graph(16, seed=2)
        runs = [
            simulate(graph, chatter_protocol, seed=5, channel=DropChannel(0.2))
            for _ in range(2)
        ]
        assert runs[0].metrics.summary() == runs[1].metrics.summary()
        assert runs[0].node_results == runs[1].node_results
        assert runs[0].metrics.messages_dropped > 0
        assert runs[0].metrics.summary()["messages_dropped"] > 0

    def test_drop_faults_surface_in_obs_dump_and_chrome_trace(self):
        from repro.obs import chrome_trace, validate_chrome_trace

        graph = random_connected_graph(16, seed=2)
        result = simulate(
            graph,
            chatter_protocol,
            seed=5,
            channel=DropChannel(0.2),
            trace=True,
            observe=True,
        )
        dropped = result.metrics.messages_dropped
        assert dropped > 0

        dump = result.obs.registry.dump()
        drop_keys = [key for key in dump if "dropped" in key]
        assert drop_keys and dump[drop_keys[0]] == dropped

        payload = chrome_trace(spans=result.spans, trace=result.trace)
        validate_chrome_trace(payload)
        fault_events = [
            event
            for event in payload["traceEvents"]
            if event.get("cat") == "fault"
        ]
        assert len(fault_events) == dropped
        assert {event["name"] for event in fault_events} == {"drop"}

    def test_drop_conservation(self):
        graph = random_connected_graph(16, seed=2)
        result = simulate(graph, chatter_protocol, seed=5, channel=DropChannel(0.2))
        metrics = result.metrics
        sent = sum(node.messages_sent for node in metrics.per_node.values())
        assert (
            metrics.messages_delivered
            + metrics.messages_lost
            + metrics.messages_dropped
            == sent
        )

    def test_delay_delivers_to_awake_receivers(self):
        graph = ring_graph(8, seed=1)
        result = simulate(
            graph, dense_protocol, seed=0, channel=DelayChannel(2), trace=True
        )
        metrics = result.metrics
        assert metrics.messages_delayed > 0
        # Dense protocol: receivers are awake for rounds 1..11, so many
        # delayed copies still land.
        assert metrics.messages_delivered > 0
        sent = sum(node.messages_sent for node in metrics.per_node.values())
        assert (
            metrics.messages_delivered + metrics.messages_lost == sent
        )  # no drops: delays resolve to deliver-or-lose
        kinds = {event.kind for event in result.trace.events}
        assert "delay" in kinds

    def test_leftover_delayed_messages_drain_to_losses(self):
        def one_shot(ctx):
            yield Awake(1, ctx.broadcast(("only", ctx.node_id)))
            return None

        graph = path_graph(3, seed=0)
        # max_delay high enough that every delayed copy outlives round 1.
        result = simulate(
            graph, one_shot, seed=0, channel=DelayChannel(5, rng=Random(3))
        )
        metrics = result.metrics
        sent = sum(node.messages_sent for node in metrics.per_node.values())
        assert metrics.messages_delivered + metrics.messages_lost == sent

    def test_duplicate_conservation_and_counters(self):
        graph = random_connected_graph(16, seed=2)
        result = simulate(
            graph, dense_protocol, seed=5, channel=DuplicateChannel(0.5)
        )
        metrics = result.metrics
        assert metrics.messages_duplicated > 0
        sent = sum(node.messages_sent for node in metrics.per_node.values())
        assert (
            metrics.messages_delivered + metrics.messages_lost
            == sent + metrics.messages_duplicated
        )

    def test_crash_stops_node_before_transmitting(self):
        graph = ring_graph(6, seed=1)
        result = simulate(
            graph, dense_protocol, seed=0, channel=CrashSchedule({2: 4}), trace=True
        )
        metrics = result.metrics
        assert metrics.nodes_crashed == 1
        assert metrics.crashed_nodes == {2: 4}
        assert 2 not in result.node_results
        assert set(result.node_results) == set(graph.node_ids) - {2}
        # The node was awake in rounds 1..3 only.
        assert metrics.per_node[2].awake_rounds == 3
        crash_events = [e for e in result.trace.events if e.kind == "crash"]
        assert [(e.round, e.node) for e in crash_events] == [(4, 2)]

    def test_random_crash_victims_deterministic_across_repeats(self):
        graph = random_connected_graph(16, seed=7)
        runs = [
            simulate(
                graph,
                dense_protocol,
                seed=3,
                channel=parse_channel_spec("crash:2@5"),
            )
            for _ in range(2)
        ]
        assert runs[0].metrics.crashed_nodes == runs[1].metrics.crashed_nodes
        assert runs[0].metrics.nodes_crashed == 2

    def test_summary_gains_fault_keys_only_under_faults(self):
        graph = ring_graph(6, seed=1)
        faulted = simulate(
            graph, dense_protocol, seed=0, channel=DropChannel(0.5)
        )
        summary = faulted.metrics.summary()
        for key in (
            "messages_dropped",
            "messages_delayed",
            "messages_duplicated",
            "nodes_crashed",
        ):
            assert key in summary

    def test_fault_trace_round_trips_through_replay(self, tmp_path):
        from repro.sim import load_trace, save_trace

        graph = ring_graph(8, seed=1)
        result = simulate(
            graph, dense_protocol, seed=0, channel=DelayChannel(2), trace=True
        )
        path = tmp_path / "fault-trace.jsonl"
        save_trace(result, path)
        loaded = load_trace(path)
        assert [e.kind for e in loaded.trace.events] == [
            e.kind for e in result.trace.events
        ]


# ----------------------------------------------------------------------
# Non-strict congest accounting across loops and channels (satellite)
# ----------------------------------------------------------------------

class TestLenientCongestAcrossTransport:
    def oversized_protocol(self, ctx):
        node_id = ctx.node_id
        for i in range(1, 4):
            yield Awake(i, ctx.broadcast(tuple(range(200)) + (node_id,)))
        return None

    def test_fast_and_general_count_violations_identically(self):
        graph = ring_graph(6, seed=0)
        fast = simulate(graph, self.oversized_protocol, strict_congest=False)
        for observers in ({"trace": True}, {"observe": True}):
            general = simulate(
                graph, self.oversized_protocol, strict_congest=False, **observers
            )
            assert (
                fast.metrics.congest_violations
                == general.metrics.congest_violations
                > 0
            )
            assert json.dumps(
                fast.metrics.summary(), sort_keys=True
            ) == json.dumps(general.metrics.summary(), sort_keys=True)

    def test_violations_counted_under_fault_channels(self):
        graph = ring_graph(6, seed=0)
        plain = simulate(graph, self.oversized_protocol, strict_congest=False)
        dropped = simulate(
            graph,
            self.oversized_protocol,
            strict_congest=False,
            channel=DropChannel(0.3),
        )
        # Congest accounting happens send-side, before the channel decides
        # the message's fate, so violation counts match exactly.
        assert (
            dropped.metrics.congest_violations
            == plain.metrics.congest_violations
            > 0
        )


# ----------------------------------------------------------------------
# NodeCrashed carries the innermost open span (satellite)
# ----------------------------------------------------------------------

class TestNodeCrashedSpan:
    @staticmethod
    def exploding_protocol(ctx):
        with ctx.span("phase", 3):
            with ctx.span("block:upcast_moe"):
                yield Awake(1, {})
                raise RuntimeError("boom")

    def test_span_attached_when_observed(self):
        with pytest.raises(NodeCrashed) as info:
            simulate(path_graph(2, seed=0), self.exploding_protocol, observe=True)
        assert info.value.span == "phase:3/block:upcast_moe"
        assert "phase:3/block:upcast_moe" in str(info.value)
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_span_none_when_unobserved(self):
        with pytest.raises(NodeCrashed) as info:
            simulate(path_graph(2, seed=0), self.exploding_protocol)
        assert info.value.span is None
        assert "in span" not in str(info.value)
