"""The `repro top` dashboard: quantiles, sample fusion, rendering."""

from __future__ import annotations

import math

from repro.obs import MetricsRegistry
from repro.telemetry import render_prometheus
from repro.telemetry.dashboard import (
    collect_top_sample,
    quantile_from_buckets,
    render_top,
)


def canned_stats(running=True):
    return {
        "uptime_s": 100.0,
        "queue_depth": 1,
        "workers": {"configured": 2, "alive": 2},
        "jobs": {"total": 3, "queued": 1, "running": 1, "done": 1, "failed": 0},
        "submissions": {"total": 5, "coalesced": 2},
        "cache": {"hit_rate": 0.5},
        "store_skipped_lines": 0,
        "per_job": {
            "deadbeef": {
                "status": "running" if running else "done",
                "submissions": 1,
                "cells": 10,
                "progress": {
                    "done": 4,
                    "total": 10,
                    "failed": 1,
                    "eta_s": 12.0,
                    "throughput_jobs_per_s": 0.5,
                },
            }
        },
    }


def canned_metrics():
    registry = MetricsRegistry()
    for _ in range(50):
        registry.counter("service.http_requests").inc(
            method="GET", endpoint="/stats", status="200"
        )
        registry.histogram("service.http_request_seconds").observe(
            0.002, method="GET", endpoint="/stats"
        )
    registry.histogram("service.queue_wait_seconds").observe(0.05)
    return render_prometheus(registry)


class TestQuantileFromBuckets:
    def test_empty_is_none(self):
        assert quantile_from_buckets([], 0.5) is None
        assert quantile_from_buckets([(0.1, 0)], 0.5) is None

    def test_bound_estimate(self):
        buckets = [(0.1, 10), (1.0, 90), (10.0, 100), (math.inf, 100)]
        assert quantile_from_buckets(buckets, 0.50) == 1.0
        assert quantile_from_buckets(buckets, 0.05) == 0.1
        assert quantile_from_buckets(buckets, 0.99) == 10.0

    def test_inf_bucket_reports_largest_finite_bound(self):
        buckets = [(0.1, 0), (math.inf, 10)]
        assert quantile_from_buckets(buckets, 0.5) == 0.1


class TestCollectTopSample:
    def test_fuses_stats_and_metrics(self):
        sample = collect_top_sample(canned_stats(), canned_metrics(), now=123.0)
        assert sample["time"] == 123.0
        assert sample["queue_depth"] == 1
        assert sample["coalesced"] == 2
        assert sample["cache_hit_rate"] == 0.5
        assert sample["requests_total"] == 50
        assert sample["requests_per_s"] == 0.5  # lifetime: 50 req / 100 s
        assert sample["latency_p50_s"] == 0.0025
        assert sample["queue_wait_p95_s"] == 0.05

    def test_in_flight_lists_running_jobs_only(self):
        sample = collect_top_sample(canned_stats(), canned_metrics(), now=0.0)
        assert [job["job"] for job in sample["in_flight"]] == ["deadbeef"]
        assert sample["in_flight"][0]["done"] == 4
        idle = collect_top_sample(
            canned_stats(running=False), canned_metrics(), now=0.0
        )
        assert idle["in_flight"] == []

    def test_tolerates_empty_payloads(self):
        sample = collect_top_sample({}, "", now=0.0)
        assert sample["requests_total"] == 0
        assert sample["latency_p50_s"] is None
        assert sample["in_flight"] == []

    def test_json_sample_is_serialisable(self):
        import json

        json.dumps(collect_top_sample(canned_stats(), canned_metrics(), now=0.0))


class TestRenderTop:
    def test_screen_mentions_key_numbers(self):
        sample = collect_top_sample(canned_stats(), canned_metrics(), now=0.0)
        screen = render_top(sample, url="http://x:1")
        assert "queue depth 1" in screen
        assert "workers 2/2" in screen
        assert "coalesced 2" in screen
        assert "cache hit rate 50.0%" in screen
        assert "deadbeef" in screen

    def test_rate_uses_previous_sample_when_available(self):
        base = collect_top_sample(canned_stats(), canned_metrics(), now=0.0)
        later = dict(base, time=10.0, requests_total=base["requests_total"] + 20)
        screen = render_top(later, previous=base, url="u")
        assert "req/s 2.00" in screen

    def test_no_in_flight_renders_placeholder(self):
        sample = collect_top_sample(
            canned_stats(running=False), canned_metrics(), now=0.0
        )
        assert "in-flight jobs: none" in render_top(sample, url="u")
