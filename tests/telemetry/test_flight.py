"""Flight recorder: bounded NDJSON lifecycle log per job."""

from __future__ import annotations

import json

from repro.telemetry import (
    FLIGHT_EVENTS,
    FlightRecorder,
    flight_path_for,
    load_flight_events,
)


class TestFlightPath:
    def test_paired_with_store(self, tmp_path):
        store = tmp_path / "jobs" / "abc123.jsonl"
        assert flight_path_for(store) == tmp_path / "jobs" / "abc123.events.ndjson"

    def test_accepts_strings(self):
        assert flight_path_for("x/y.jsonl").name == "y.events.ndjson"


class TestFlightRecorder:
    def test_records_sequenced_events_with_trace(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "j.events.ndjson", trace_id="t1")
        assert recorder.record("submitted", cells=3)
        assert recorder.record("dequeued", queue_wait_s=0.01)
        events = load_flight_events(recorder.path)
        assert [event["event"] for event in events] == ["submitted", "dequeued"]
        assert [event["seq"] for event in events] == [0, 1]
        assert all(event["trace_id"] == "t1" for event in events)
        assert events[0]["cells"] == 3

    def test_offsets_are_monotonic(self, tmp_path):
        ticks = iter(range(100))
        recorder = FlightRecorder(
            tmp_path / "j.events.ndjson", clock=lambda: next(ticks) * 0.001
        )
        for name in ("submitted", "dequeued", "finalized"):
            recorder.record(name)
        offsets = [e["offset_ms"] for e in load_flight_events(recorder.path)]
        assert offsets == sorted(offsets)
        assert offsets[0] >= 0

    def test_cap_drops_non_forced_events(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "j.events.ndjson", max_events=2)
        assert recorder.record("submitted")
        assert recorder.record("dequeued")
        assert not recorder.record("cell_finished")
        assert not recorder.record("cell_finished")
        assert recorder.dropped == 2
        assert recorder.recorded == 2

    def test_force_bypasses_cap(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "j.events.ndjson", max_events=1)
        recorder.record("submitted")
        recorder.record("cell_finished")  # dropped
        assert recorder.record("finalized", force=True, dropped=recorder.dropped)
        events = load_flight_events(recorder.path)
        assert events[-1]["event"] == "finalized"
        assert events[-1]["dropped"] == 1

    def test_io_error_degrades_to_drop(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        recorder = FlightRecorder(target / "j.events.ndjson")
        assert not recorder.record("submitted")
        assert recorder.dropped == 1

    def test_creates_parent_directories(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "deep" / "er" / "j.events.ndjson")
        assert recorder.record("submitted")
        assert recorder.path.exists()

    def test_event_vocabulary_covers_lifecycle(self):
        assert FLIGHT_EVENTS[0] == "submitted"
        assert FLIGHT_EVENTS[-1] == "finalized"
        assert "dequeued" in FLIGHT_EVENTS
        assert "cell_finished" in FLIGHT_EVENTS


class TestLoadFlightEvents:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_flight_events(tmp_path / "nope.ndjson") == []

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        target = tmp_path / "j.events.ndjson"
        target.write_text(
            json.dumps({"seq": 0, "event": "submitted"})
            + "\n"
            + '{"seq": 1, "event": "dequ'  # torn write
        )
        events = load_flight_events(target)
        assert len(events) == 1
        assert events[0]["event"] == "submitted"

    def test_non_object_lines_are_skipped(self, tmp_path):
        target = tmp_path / "j.events.ndjson"
        target.write_text('42\n{"seq": 0, "event": "submitted"}\n\n')
        events = load_flight_events(target)
        assert [event["event"] for event in events] == ["submitted"]
