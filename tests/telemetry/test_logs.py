"""Trace IDs, context propagation, and the structured log formatters."""

from __future__ import annotations

import json
import logging
import threading

from repro.telemetry import (
    JsonLogFormatter,
    TextLogFormatter,
    configure_logging,
    current_trace_id,
    log_access,
    new_trace_id,
    reset_trace_id,
    set_trace_id,
    trace_context,
)


def make_record(message="hello", name="repro.test", level=logging.INFO, **extra):
    record = logging.LogRecord(name, level, __file__, 1, message, (), None)
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestTraceContext:
    def test_new_trace_id_is_16_hex_chars(self):
        token = new_trace_id()
        assert len(token) == 16
        int(token, 16)  # hex

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64

    def test_no_ambient_trace_by_default(self):
        assert current_trace_id() is None

    def test_trace_context_installs_and_restores(self):
        assert current_trace_id() is None
        with trace_context("abc123") as active:
            assert active == "abc123"
            assert current_trace_id() == "abc123"
        assert current_trace_id() is None

    def test_trace_context_mints_when_not_given(self):
        with trace_context() as active:
            assert active == current_trace_id()
            assert len(active) == 16

    def test_contexts_nest(self):
        with trace_context("outer"):
            with trace_context("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"

    def test_set_reset_roundtrip(self):
        token = set_trace_id("manual")
        assert current_trace_id() == "manual"
        reset_trace_id(token)
        assert current_trace_id() is None

    def test_threads_do_not_inherit_by_default(self):
        seen = []
        with trace_context("parent"):
            thread = threading.Thread(
                target=lambda: seen.append(current_trace_id())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestJsonLogFormatter:
    def test_core_fields(self):
        payload = json.loads(JsonLogFormatter().format(make_record()))
        assert payload["message"] == "hello"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert isinstance(payload["ts"], float)

    def test_trace_id_from_context(self):
        with trace_context("ctxtrace"):
            payload = json.loads(JsonLogFormatter().format(make_record()))
        assert payload["trace_id"] == "ctxtrace"

    def test_explicit_trace_id_beats_context(self):
        with trace_context("ctxtrace"):
            record = make_record(trace_id="explicit")
            payload = json.loads(JsonLogFormatter().format(record))
        assert payload["trace_id"] == "explicit"

    def test_no_trace_key_without_a_trace(self):
        payload = json.loads(JsonLogFormatter().format(make_record()))
        assert "trace_id" not in payload

    def test_extra_fields_are_emitted(self):
        record = make_record(job="abcd", cells=7)
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["job"] == "abcd"
        assert payload["cells"] == 7

    def test_output_is_one_json_line(self):
        line = JsonLogFormatter().format(make_record(job="x"))
        assert "\n" not in line
        assert json.loads(line)


class TestTextLogFormatter:
    def test_appends_trace_marker_when_active(self):
        with trace_context("texttrace"):
            line = TextLogFormatter().format(make_record())
        assert line.endswith("[trace:texttrace]")

    def test_plain_without_trace(self):
        line = TextLogFormatter().format(make_record())
        assert "[trace:" not in line
        assert "hello" in line


class TestConfigureLogging:
    def test_reconfigure_does_not_stack_handlers(self):
        logger = logging.getLogger("repro-test-configure")
        configure_logging(json_logs=True, logger=logger)
        configure_logging(json_logs=True, logger=logger)
        managed = [
            handler
            for handler in logger.handlers
            if getattr(handler, "_repro_telemetry_handler", False)
        ]
        assert len(managed) == 1
        for handler in managed:
            logger.removeHandler(handler)

    def test_log_file_receives_json_lines(self, tmp_path):
        target = tmp_path / "daemon.log"
        logger = logging.getLogger("repro-test-filelog")
        configure_logging(json_logs=True, log_file=str(target), logger=logger)
        with trace_context("filetrace"):
            logger.info("to file", extra={"job": "j1"})
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
            handler.close()
        lines = [
            json.loads(line)
            for line in target.read_text().splitlines()
        ]
        assert lines and lines[0]["message"] == "to file"
        assert lines[0]["trace_id"] == "filetrace"
        assert lines[0]["job"] == "j1"


class TestLogAccess:
    def test_one_record_with_status_and_duration(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            log_access("GET", "/stats", 200, 1.25, trace_id="acc1")
        records = [
            record
            for record in caplog.records
            if record.name == "repro.service.access"
        ]
        assert len(records) == 1
        record = records[0]
        assert record.status == 200
        assert record.duration_ms == 1.25
        assert record.trace_id == "acc1"
        assert record.method == "GET"
