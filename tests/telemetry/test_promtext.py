"""Prometheus text rendering: determinism, escaping, schema sanity."""

from __future__ import annotations

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKET_BOUNDS
from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    metric_name,
    parse_prometheus,
    render_prometheus,
    validate_promtext,
)


def populated_registry(order="forward"):
    """A registry with every instrument kind; label insertion order varies."""
    registry = MetricsRegistry()
    labelsets = [
        {"method": "GET", "endpoint": "/stats"},
        {"method": "POST", "endpoint": "/jobs"},
    ]
    if order == "reverse":
        labelsets = list(reversed(labelsets))
    for labels in labelsets:
        registry.counter("service.http_requests").inc(3, status="200", **labels)
        registry.histogram("service.http_request_seconds").observe(
            0.004, **labels
        )
        registry.histogram("service.http_request_seconds").observe(
            0.3, **labels
        )
    registry.gauge("service.queue_depth").set(2)
    registry.counter("service.submissions").inc(kind="new")
    return registry


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("service.queue_depth") == "service_queue_depth"

    def test_leading_digit_is_prefixed(self):
        assert metric_name("1bad")[0] == "_"

    def test_valid_names_pass_through(self):
        assert metric_name("already_ok:colons") == "already_ok:colons"


class TestEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_values_render_and_parse(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, path='we"ird\nvalue')
        text = render_prometheus(registry)
        samples = parse_prometheus(text)
        assert len(samples) == 1
        key = next(iter(samples))
        assert '\\"' in key and "\\n" in key
        validate_promtext(text)


class TestRenderDeterminism:
    def test_identical_registries_render_byte_identical(self):
        first = render_prometheus(populated_registry("forward"))
        second = render_prometheus(populated_registry("reverse"))
        assert first == second

    def test_histogram_label_insertion_order_is_normalised(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        # Same labels, opposite keyword order at every call site.
        a.histogram("h").observe(0.01, method="GET", endpoint="/stats")
        b.histogram("h").observe(0.01, endpoint="/stats", method="GET")
        assert render_prometheus(a) == render_prometheus(b)
        assert a.histogram("h").buckets(
            method="GET", endpoint="/stats"
        ) == b.histogram("h").buckets(endpoint="/stats", method="GET")

    def test_families_sorted_by_rendered_name(self):
        text = render_prometheus(populated_registry())
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        names = [line.split()[2] for line in type_lines]
        assert names == sorted(names)

    def test_empty_registry_renders_empty_page(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestRenderedSchema:
    def test_counter_gets_total_suffix(self):
        text = render_prometheus(populated_registry())
        assert "service_http_requests_total{" in text
        assert "service_submissions_total{" in text

    def test_validates_and_counts_samples(self):
        text = render_prometheus(populated_registry())
        count = validate_promtext(text)
        assert count == len(parse_prometheus(text))
        assert count > 0

    def test_histogram_buckets_are_cumulative_and_match_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (0.0005, 0.004, 0.004, 0.2, 100.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        samples = parse_prometheus(text)
        buckets = sorted(
            (
                math.inf
                if 'le="+Inf"' in key
                else float(key.split('le="')[1].rstrip('"}')),
                value,
            )
            for key, value in samples.items()
            if key.startswith("lat_bucket")
        )
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == samples["lat_count"] == 5
        # 100.0 exceeds every finite bound: only +Inf holds all five.
        assert buckets[-2][1] == 4
        assert samples["lat_sum"] == pytest.approx(100.2085)
        assert len(buckets) == len(DEFAULT_BUCKET_BOUNDS) + 1

    def test_registry_summary_output_unchanged_by_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.5, kind="x")
        summary = registry.histogram("h").summary(kind="x")
        assert set(summary) == {"count", "sum", "min", "max", "mean"}
        dump = registry.dump()
        assert "h{kind=x}.count" in dump
        assert not any("bucket" in key for key in dump)


class TestValidator:
    def test_duplicate_type_rejected(self):
        page = (
            "# TYPE m counter\n# TYPE m counter\nm_total 1\n"
        )
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_promtext(page)

    def test_duplicate_help_rejected(self):
        page = (
            "# HELP m m\n# HELP m m\n# TYPE m counter\nm_total 1\n"
        )
        with pytest.raises(ValueError, match="duplicate HELP"):
            validate_promtext(page)

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            validate_promtext("orphan 1\n")

    def test_non_monotone_buckets_rejected(self):
        page = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="non-monotone"):
            validate_promtext(page)

    def test_missing_inf_bucket_rejected(self):
        page = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match=r"missing \+Inf"):
            validate_promtext(page)

    def test_inf_count_mismatch_rejected(self):
        page = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="_count"):
            validate_promtext(page)

    def test_unparseable_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            validate_promtext("!!! not a sample\n")


class TestParser:
    def test_parses_values_and_inf(self):
        samples = parse_prometheus(
            "# HELP x x\n# TYPE x gauge\nx 1.5\ny{le=\"+Inf\"} +Inf\n"
        )
        assert samples["x"] == 1.5
        assert math.isinf(samples['y{le="+Inf"}'])

    def test_content_type_is_prometheus_004(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE
